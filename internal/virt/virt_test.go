package virt

import (
	"testing"
	"time"

	"repro/internal/ip"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/vnet"
)

// testbed builds a kernel, cluster, network and n DSL hosts.
func testbed(t *testing.T, physNodes, hosts int, tp *topo.Topology) (*sim.Kernel, *Cluster, *vnet.Network, []*vnet.Host) {
	t.Helper()
	k := sim.New(1)
	cl, err := NewCluster(k, physNodes, DefaultConfig(tp))
	if err != nil {
		t.Fatal(err)
	}
	n := vnet.NewNetwork(k, cl, vnet.DefaultConfig())
	var hs []*vnet.Host
	base := ip.MustParseAddr("10.0.0.1")
	for i := 0; i < hosts; i++ {
		h, err := n.AddHostClass(base.Add(uint32(i)), topo.DSL)
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	return k, cl, n, hs
}

func TestClusterAdminAddresses(t *testing.T) {
	k := sim.New(1)
	cl, err := NewCluster(k, 3, DefaultConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	if cl.Node(0).AdminAddr() != ip.MustParseAddr("192.168.38.1") {
		t.Fatalf("phys0 admin = %v", cl.Node(0).AdminAddr())
	}
	if cl.Node(2).AdminAddr() != ip.MustParseAddr("192.168.38.3") {
		t.Fatalf("phys2 admin = %v", cl.Node(2).AdminAddr())
	}
}

func TestClusterTooManyForAdminSubnet(t *testing.T) {
	k := sim.New(1)
	if _, err := NewCluster(k, 300, DefaultConfig(nil)); err == nil {
		t.Fatal("300 nodes cannot fit a /24 admin subnet")
	}
}

func TestPlaceSuccessive(t *testing.T) {
	_, cl, _, hs := testbed(t, 4, 40, nil)
	if err := cl.PlaceSuccessive(hs, 10); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if got := len(cl.Node(i).Aliases()); got != 10 {
			t.Fatalf("phys%d hosts %d aliases, want 10", i, got)
		}
	}
	// First host on phys0, eleventh on phys1.
	if cl.NodeOf(hs[0].Addr()) != cl.Node(0) {
		t.Fatal("host 0 should be on phys0")
	}
	if cl.NodeOf(hs[10].Addr()) != cl.Node(1) {
		t.Fatal("host 10 should be on phys1")
	}
	if cl.FoldingRatio() != 10 {
		t.Fatalf("folding ratio = %v, want 10", cl.FoldingRatio())
	}
}

func TestPlaceRoundRobin(t *testing.T) {
	_, cl, _, hs := testbed(t, 4, 8, nil)
	if err := cl.PlaceRoundRobin(hs); err != nil {
		t.Fatal(err)
	}
	if cl.NodeOf(hs[0].Addr()) != cl.Node(0) || cl.NodeOf(hs[1].Addr()) != cl.Node(1) {
		t.Fatal("round-robin order broken")
	}
	if cl.NodeOf(hs[4].Addr()) != cl.Node(0) {
		t.Fatal("round-robin wrap broken")
	}
}

func TestPlaceOverflow(t *testing.T) {
	_, cl, _, hs := testbed(t, 2, 30, nil)
	if err := cl.PlaceSuccessive(hs, 10); err == nil {
		t.Fatal("30 hosts at 10/node need 3 phys nodes, only 2 exist")
	}
}

func TestPlaceDuplicate(t *testing.T) {
	_, cl, _, hs := testbed(t, 2, 1, nil)
	if err := cl.PlaceSuccessive(hs, 1); err != nil {
		t.Fatal(err)
	}
	if err := cl.PlaceSuccessive(hs, 1); err == nil {
		t.Fatal("placing the same address twice should fail")
	}
}

func TestPlaceAdminCollision(t *testing.T) {
	k := sim.New(1)
	cl, _ := NewCluster(k, 1, DefaultConfig(nil))
	n := vnet.NewNetwork(k, cl, vnet.DefaultConfig())
	h, err := n.AddHostClass(ip.MustParseAddr("192.168.38.77"), topo.DSL)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.PlaceSuccessive([]*vnet.Host{h}, 1); err == nil {
		t.Fatal("alias inside the admin subnet must be rejected")
	}
}

func TestTwoRulesPerVirtualNode(t *testing.T) {
	// The paper: "two rules for each hosted virtual node (incoming and
	// outgoing packets)".
	_, cl, _, hs := testbed(t, 1, 25, nil)
	if err := cl.PlaceSuccessive(hs, 25); err != nil {
		t.Fatal(err)
	}
	if got := cl.Node(0).Rules().Len(); got != 50 {
		t.Fatalf("rules = %d, want 50 (2 × 25 vnodes)", got)
	}
}

func TestGroupLatencyRulesInstalled(t *testing.T) {
	// A phys node hosting a 10.1.3.x node needs rules toward the other
	// 10.1 ISPs (2) and regions 2 and 3 via region-1 (2): 4 group rules
	// plus 2 per-vnode rules.
	k := sim.New(1)
	tp := topo.Fig7()
	cl, err := NewCluster(k, 1, DefaultConfig(tp))
	if err != nil {
		t.Fatal(err)
	}
	n := vnet.NewNetwork(k, cl, vnet.DefaultConfig())
	h, err := n.AddHostClass(ip.MustParseAddr("10.1.3.207"), topo.FastDSL)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.PlaceSuccessive([]*vnet.Host{h}, 1); err != nil {
		t.Fatal(err)
	}
	if got := cl.Node(0).Rules().Len(); got != 6 {
		for _, r := range cl.Node(0).Rules().Rules() {
			t.Log(r.String())
		}
		t.Fatalf("rules = %d, want 6 (2 per-vnode + 4 group)", got)
	}
}

func TestRouteSamePhysSkipsNIC(t *testing.T) {
	_, cl, _, hs := testbed(t, 2, 2, nil)
	if err := cl.PlaceSuccessive(hs, 2); err != nil { // both on phys0
		t.Fatal(err)
	}
	r := cl.Route(hs[0].Addr(), hs[1].Addr(), 1000)
	for _, p := range r.Pipes {
		if p == cl.Node(0).NICOut() || p == cl.Node(0).NICIn() {
			t.Fatal("co-hosted route must not traverse the NIC")
		}
	}
}

func TestRouteCrossPhysUsesNIC(t *testing.T) {
	_, cl, _, hs := testbed(t, 2, 2, nil)
	if err := cl.PlaceSuccessive(hs, 1); err != nil {
		t.Fatal(err)
	}
	r := cl.Route(hs[0].Addr(), hs[1].Addr(), 1000)
	foundOut, foundIn := false, false
	for _, p := range r.Pipes {
		if p == cl.Node(0).NICOut() {
			foundOut = true
		}
		if p == cl.Node(1).NICIn() {
			foundIn = true
		}
	}
	if !foundOut || !foundIn {
		t.Fatalf("cross-phys route missing NIC pipes (out=%v in=%v)", foundOut, foundIn)
	}
}

func TestRouteChargesRuleCost(t *testing.T) {
	_, cl, _, hs := testbed(t, 1, 50, nil)
	if err := cl.PlaceSuccessive(hs, 50); err != nil {
		t.Fatal(err)
	}
	// 100 rules on the table; egress + ingress scans visit all of them.
	r := cl.Route(hs[0].Addr(), hs[1].Addr(), 100)
	wantRules := time.Duration(200) * netem.DefaultPerRuleCost
	wantCPU := 2 * DefaultConfig(nil).PerMessageCPU
	if r.Cost != wantRules+wantCPU {
		t.Fatalf("cost = %v, want %v", r.Cost, wantRules+wantCPU)
	}
}

func TestRouteDenyRule(t *testing.T) {
	_, cl, _, hs := testbed(t, 1, 2, nil)
	if err := cl.PlaceSuccessive(hs, 2); err != nil {
		t.Fatal(err)
	}
	cl.Node(0).Rules().Add(netem.Rule{
		ID:     1, // before all per-vnode rules
		Src:    ip.NewPrefix(hs[0].Addr(), 32),
		Dst:    ip.NewPrefix(hs[1].Addr(), 32),
		Action: netem.ActionDeny,
	})
	r := cl.Route(hs[0].Addr(), hs[1].Addr(), 100)
	if !r.Drop {
		t.Fatal("deny rule should drop the route")
	}
}

func TestRouteUnplacedHostsZeroRoute(t *testing.T) {
	_, cl, _, hs := testbed(t, 1, 2, nil)
	r := cl.Route(hs[0].Addr(), hs[1].Addr(), 100)
	if len(r.Pipes) != 0 || r.Cost != 0 || r.Drop {
		t.Fatalf("unplaced route should be empty, got %+v", r)
	}
}

func TestRouteGroupLatency(t *testing.T) {
	k := sim.New(1)
	tp := topo.Fig7()
	cl, _ := NewCluster(k, 2, DefaultConfig(tp))
	n := vnet.NewNetwork(k, cl, vnet.DefaultConfig())
	a, _ := n.AddHostClass(ip.MustParseAddr("10.1.3.207"), topo.FastDSL)
	b, _ := n.AddHostClass(ip.MustParseAddr("10.2.2.117"), topo.Campus)
	cl.PlaceSuccessive([]*vnet.Host{a, b}, 1)
	r := cl.Route(a.Addr(), b.Addr(), 100)
	if r.Latency != 400*time.Millisecond {
		t.Fatalf("latency = %v, want 400ms", r.Latency)
	}
}

func TestEndToEndThroughCluster(t *testing.T) {
	// Full stack: two DSL hosts folded onto one phys node exchange a
	// message; delivery time dominated by the 128 kb/s up-link.
	k, cl, n, hs := testbed(t, 1, 2, nil)
	if err := cl.PlaceSuccessive(hs, 2); err != nil {
		t.Fatal(err)
	}
	var recvAt sim.Time
	k.Go("server", func(p *sim.Proc) {
		l, err := hs[1].Listen(p, 80)
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		c, err := l.Accept(p)
		if err != nil {
			return
		}
		if _, err := c.Recv(p); err == nil {
			recvAt = p.Now()
		}
	})
	k.Go("client", func(p *sim.Proc) {
		p.Yield()
		c, err := hs[0].Dial(p, ip.Endpoint{Addr: hs[1].Addr(), Port: 80})
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		c.Send(p, make([]byte, 16000))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if recvAt == 0 {
		t.Fatal("message never delivered")
	}
	got := time.Duration(recvAt)
	if got < time.Second || got > 1500*time.Millisecond {
		t.Fatalf("delivery at %v, want ≈1.2s (DSL up-link bound)", got)
	}
	if n.Stats().MessagesDelivered == 0 {
		t.Fatal("no messages recorded")
	}
}

func TestSetVirtualCPUSlowsOneNode(t *testing.T) {
	// Two co-hosted DSL nodes send to a third; one is throttled to a
	// slow virtual processor. Its transfers take visibly longer, the
	// other node's do not — the heterogeneous-CPU extension.
	k, cl, _, hs := testbed(t, 2, 3, nil)
	if err := cl.PlaceSuccessive(hs, 2); err != nil {
		t.Fatal(err)
	}
	// 16 kB/s virtual CPU: a 16000-byte message needs ≈1s of CPU on
	// top of its ≈1s DSL serialization.
	cl.SetVirtualCPU(hs[0].Addr(), 16_000)
	recvAt := map[byte]sim.Time{}
	k.Go("server", func(p *sim.Proc) {
		l, err := hs[2].Listen(p, 80)
		if err != nil {
			return
		}
		for i := 0; i < 2; i++ {
			conn, err := l.Accept(p)
			if err != nil {
				return
			}
			c := conn
			p.Go("handler", func(p *sim.Proc) {
				pk, err := c.Recv(p)
				if err == nil {
					recvAt[pk.Data[0]] = p.Now()
				}
			})
		}
	})
	send := func(idx int, tag byte) {
		k.Go("client", func(p *sim.Proc) {
			p.Yield()
			c, err := hs[idx].Dial(p, ip.Endpoint{Addr: hs[2].Addr(), Port: 80})
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			buf := make([]byte, 16000)
			buf[0] = tag
			c.Send(p, buf)
		})
	}
	send(0, 'a') // throttled
	send(1, 'b') // full speed
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	slow, fast := recvAt['a'], recvAt['b']
	if slow == 0 || fast == 0 {
		t.Fatalf("deliveries missing: %v", recvAt)
	}
	if slow < fast+sim.Time(500*time.Millisecond) {
		t.Fatalf("throttled node (%v) should lag full-speed node (%v) by ≈1s", slow, fast)
	}
}

func TestSetVirtualCPUReconfigure(t *testing.T) {
	k := sim.New(1)
	cl, _ := NewCluster(k, 1, DefaultConfig(nil))
	a := ip.MustParseAddr("10.0.0.1")
	cl.SetVirtualCPU(a, 1000)
	if cl.VirtualCPU(a) == nil {
		t.Fatal("pipe missing")
	}
	cl.SetVirtualCPU(a, 2000) // reconfigure in place
	if cl.VirtualCPU(a).Config().Bandwidth != 16000 {
		t.Fatalf("bandwidth = %d", cl.VirtualCPU(a).Config().Bandwidth)
	}
	cl.SetVirtualCPU(a, 0) // remove
	if cl.VirtualCPU(a) != nil {
		t.Fatal("throttle should be removed")
	}
}

func TestFoldingRatioEmpty(t *testing.T) {
	k := sim.New(1)
	cl, _ := NewCluster(k, 4, DefaultConfig(nil))
	if cl.FoldingRatio() != 0 {
		t.Fatal("empty cluster folding ratio should be 0")
	}
}
