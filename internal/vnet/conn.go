package vnet

import (
	"errors"
	"io"

	"repro/internal/ip"
	"repro/internal/sim"
)

// Packet is one received message: real bytes, or a sparse payload
// described by Meta and Size (used by large-swarm experiments to avoid
// materializing gigabytes of piece data).
type Packet struct {
	Data []byte
	Meta any
	Size int
	From ip.Endpoint
}

// Len returns the payload length in bytes regardless of representation.
func (pk Packet) Len() int {
	if pk.Data != nil {
		return len(pk.Data)
	}
	return pk.Size
}

// Conn is a TCP-like reliable, ordered, message-boundary-preserving
// connection between two virtual nodes. Reliability is modelled (lossy
// pipes trigger retransmission with backoff); ordering follows from the
// FIFO pipe model.
type Conn struct {
	h           *Host
	id          uint64
	local       ip.Endpoint
	remote      ip.Endpoint
	inbox       *sim.Chan[Packet]
	hs          *sim.Cond
	established bool
	refused     bool
	closed      bool
	remoteDone  bool
	readRest    []byte

	// TCP-like sequencing: retransmitted messages may arrive out of
	// order relative to later messages or the FIN, so delivery to the
	// inbox is reordered by sequence number.
	sendSeq  uint64
	recvNext uint64
	pending  map[uint64]Packet
	finSeen  bool
	finSeq   uint64

	// sink, when set, receives packets instead of the inbox. It runs in
	// kernel-callback context and must not block.
	sink    func(pk Packet, closed bool)
	sinkEOF bool
}

// SetSink switches the connection to push delivery: every subsequent
// in-order packet is handed to fn instead of the blocking inbox, and fn
// is called once with closed=true when the peer side closes. Packets
// already buffered are flushed to fn immediately. fn runs in kernel
// event context and must not block — the intended use is appending to an
// unbounded queue shared by many connections, so one goroutine can
// multiplex hundreds of peers without a reader goroutine each.
//
//p2p:token
func (c *Conn) SetSink(fn func(pk Packet, closed bool)) {
	c.sink = fn
	for {
		pk, ok := c.inbox.TryRecv()
		if !ok {
			break
		}
		fn(pk, false)
	}
	if c.inbox.Closed() && !c.sinkEOF {
		c.sinkEOF = true
		fn(Packet{}, true)
	}
}

// onData reorders an arriving data message into the inbox.
//
//p2p:token
func (c *Conn) onData(seq uint64, pk Packet) {
	if seq < c.recvNext {
		return // duplicate
	}
	if seq == c.recvNext && len(c.pending) == 0 {
		// In-order arrival with nothing buffered — the overwhelming
		// common case under FIFO pipes: deliver directly instead of
		// bouncing the packet through the reorder map.
		c.recvNext++
		if c.sink != nil {
			c.sink(pk, false)
		} else {
			c.inbox.TrySend(pk)
		}
		c.checkFin()
		return
	}
	if c.pending == nil {
		c.pending = make(map[uint64]Packet)
	}
	c.pending[seq] = pk
	c.flushInOrder()
}

// abort tears the receive side down immediately (RST).
//
//p2p:token
func (c *Conn) abort() {
	c.inbox.Close()
	if c.sink != nil && !c.sinkEOF {
		c.sinkEOF = true
		c.sink(Packet{}, true)
	}
}

// onFin records the end-of-stream sequence and closes once reached.
//
//p2p:token
func (c *Conn) onFin(seq uint64) {
	c.finSeen = true
	c.finSeq = seq
	c.remoteDone = true
	c.flushInOrder()
}

//p2p:token
func (c *Conn) flushInOrder() {
	for {
		pk, ok := c.pending[c.recvNext]
		if !ok {
			break
		}
		delete(c.pending, c.recvNext)
		c.recvNext++
		if c.sink != nil {
			c.sink(pk, false)
		} else {
			c.inbox.TrySend(pk)
		}
	}
	c.checkFin()
}

// checkFin closes the receive side once the FIN's sequence is reached.
//
//p2p:token
func (c *Conn) checkFin() {
	if c.finSeen && c.recvNext >= c.finSeq {
		c.inbox.Close()
		if c.sink != nil && !c.sinkEOF {
			c.sinkEOF = true
			c.sink(Packet{}, true)
		}
	}
}

// LocalAddr returns the local endpoint.
func (c *Conn) LocalAddr() ip.Endpoint { return c.local }

// RemoteAddr returns the remote endpoint.
func (c *Conn) RemoteAddr() ip.Endpoint { return c.remote }

// Send transmits one message of real bytes. The data is copied, so the
// caller may reuse the buffer.
func (c *Conn) Send(p *sim.Proc, data []byte) error {
	buf := make([]byte, len(data))
	copy(buf, data)
	return c.send(p, message{payload: buf, size: len(buf)})
}

// SendMeta transmits a sparse message: size bytes on the wire carrying a
// protocol object instead of real bytes.
func (c *Conn) SendMeta(p *sim.Proc, size int, meta any) error {
	return c.send(p, message{meta: meta, size: size})
}

func (c *Conn) send(p *sim.Proc, m message) error {
	if c.closed {
		return ErrClosed
	}
	if !c.established {
		return ErrClosed
	}
	c.h.syscall(p, SyscallSend)
	m.kind = kindData
	m.src = c.local
	m.dst = c.remote
	m.connID = c.id
	m.seq = c.sendSeq
	c.sendSeq++
	if !c.h.net.transmit(c.h, m, true) {
		return ErrNetUnreachable
	}
	return nil
}

// Recv blocks until a message arrives. It returns ErrClosed after the
// peer closes and the inbox drains.
func (c *Conn) Recv(p *sim.Proc) (Packet, error) {
	c.h.syscall(p, SyscallRecv)
	pk, err := c.inbox.Recv(p)
	if errors.Is(err, sim.ErrClosed) {
		return pk, ErrClosed
	}
	return pk, err
}

// RecvTimeout is Recv with a virtual-time deadline; ok=false with nil
// error means the deadline expired.
func (c *Conn) RecvTimeout(p *sim.Proc, d sim.Duration) (Packet, bool, error) {
	c.h.syscall(p, SyscallRecv)
	pk, ok, err := c.inbox.RecvTimeout(p, d)
	if errors.Is(err, sim.ErrClosed) {
		return pk, ok, ErrClosed
	}
	return pk, ok, err
}

// Close sends a FIN and closes the local side. Receiving continues to
// drain buffered data on the peer. Close is idempotent.
func (c *Conn) Close(p *sim.Proc) error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.h.syscall(p, SyscallClose)
	if c.established {
		c.h.net.transmit(c.h, message{
			kind: kindFin, src: c.local, dst: c.remote, size: 20,
			connID: c.id, seq: c.sendSeq,
		}, true)
	}
	c.h.conns.del(c.id)
	return nil
}

// Closed reports whether the local side has been closed.
func (c *Conn) Closed() bool { return c.closed }

// Write implements a stream-style write: the whole buffer goes out as
// one message. It satisfies the spirit of io.Writer but needs the
// calling process, so it does not implement the stdlib interface.
func (c *Conn) Write(p *sim.Proc, data []byte) (int, error) {
	if err := c.Send(p, data); err != nil {
		return 0, err
	}
	return len(data), nil
}

// Read implements a stream-style read over the message inbox: message
// boundaries are not preserved, leftovers are buffered. It returns
// io.EOF after the peer closes and all data drains.
func (c *Conn) Read(p *sim.Proc, buf []byte) (int, error) {
	for len(c.readRest) == 0 {
		pk, err := c.Recv(p)
		if errors.Is(err, ErrClosed) {
			return 0, io.EOF
		}
		if err != nil {
			return 0, err
		}
		if pk.Data == nil && pk.Size > 0 {
			// Sparse payloads surface as zero bytes of that length.
			c.readRest = make([]byte, pk.Size)
		} else {
			c.readRest = pk.Data
		}
	}
	n := copy(buf, c.readRest)
	c.readRest = c.readRest[n:]
	return n, nil
}

// Listener accepts inbound connections on a host port.
type Listener struct {
	h       *Host
	port    ip.Port
	backlog *sim.Chan[*Conn]
	closed  bool
}

// Addr returns the listening endpoint.
func (l *Listener) Addr() ip.Endpoint { return ip.Endpoint{Addr: l.h.addr, Port: l.port} }

// Accept blocks until a connection arrives; it returns ErrClosed after
// Close.
func (l *Listener) Accept(p *sim.Proc) (*Conn, error) {
	l.h.syscall(p, SyscallAccept)
	c, err := l.backlog.Recv(p)
	if errors.Is(err, sim.ErrClosed) {
		return nil, ErrClosed
	}
	return c, err
}

// AcceptTimeout is Accept with a deadline; ok=false means it expired.
func (l *Listener) AcceptTimeout(p *sim.Proc, d sim.Duration) (*Conn, bool, error) {
	l.h.syscall(p, SyscallAccept)
	c, ok, err := l.backlog.RecvTimeout(p, d)
	if errors.Is(err, sim.ErrClosed) {
		return nil, ok, ErrClosed
	}
	return c, ok, err
}

// Close stops accepting. Pending backlog connections are refused: each
// queued connection was already SYN-ACK'd and registered, so the
// dialer side is established — closing the backlog alone would leave
// those dialers half-open forever. Draining sends each one an RST
// (dialers see ErrClosed) and deregisters the local side.
//
//p2p:token
func (l *Listener) Close() {
	if l.closed {
		return
	}
	l.closed = true
	delete(l.h.ports, l.port)
	l.backlog.Close()
	for {
		c, ok := l.backlog.TryRecv()
		if !ok {
			break
		}
		c.closed = true
		l.h.conns.del(c.id)
		c.abort()
		l.h.net.transmit(l.h, message{
			kind: kindRst, src: c.local, dst: c.remote, size: 20, connID: c.id,
		}, true)
	}
}
