package vnet

// connTable maps connection IDs to *Conn with open addressing (linear
// probing, backward-shift deletion). It replaces a Go map on the
// per-message delivery path: a hit is one probe into an inline slot
// array, where the map pays header, directory and group dereferences —
// a measurable difference in 10k-host swarms whose per-host tables all
// miss cache. Connection IDs start at 1, so 0 marks an empty slot.
// Iteration (forEach) is in slot order: deterministic, used only for
// order-independent reductions (obs collectors).
type connTable struct {
	slots []connSlot // power-of-two length; nil until the first add
	used  int
}

type connSlot struct {
	id uint64
	c  *Conn
}

// home is the preferred slot for id: sequential IDs are spread by a
// Fibonacci multiply so probe runs stay short.
func (t *connTable) home(id uint64) int {
	return int((id*0x9E3779B97F4A7C15)>>32) & (len(t.slots) - 1)
}

func (t *connTable) len() int { return t.used }

func (t *connTable) get(id uint64) *Conn {
	if t.used == 0 {
		return nil
	}
	mask := len(t.slots) - 1
	for i := t.home(id); ; i = (i + 1) & mask {
		s := t.slots[i]
		if s.id == id {
			return s.c
		}
		if s.id == 0 {
			return nil
		}
	}
}

func (t *connTable) add(c *Conn) {
	if t.slots == nil {
		t.slots = make([]connSlot, 8)
	} else if 4*(t.used+1) > 3*len(t.slots) {
		old := t.slots
		t.slots = make([]connSlot, 2*len(old))
		for _, s := range old {
			if s.id != 0 {
				t.place(s.id, s.c)
			}
		}
	}
	mask := len(t.slots) - 1
	for i := t.home(c.id); ; i = (i + 1) & mask {
		s := &t.slots[i]
		if s.id == c.id { // re-register: overwrite, like the map did
			s.c = c
			return
		}
		if s.id == 0 {
			s.id, s.c = c.id, c
			t.used++
			return
		}
	}
}

// place inserts during a rehash (keys known distinct, table known
// roomy).
func (t *connTable) place(id uint64, c *Conn) {
	mask := len(t.slots) - 1
	for i := t.home(id); ; i = (i + 1) & mask {
		if t.slots[i].id == 0 {
			t.slots[i] = connSlot{id: id, c: c}
			return
		}
	}
}

func (t *connTable) del(id uint64) {
	if t.used == 0 {
		return
	}
	mask := len(t.slots) - 1
	i := t.home(id)
	for {
		s := t.slots[i]
		if s.id == 0 {
			return // absent: delete is a no-op, like the map
		}
		if s.id == id {
			break
		}
		i = (i + 1) & mask
	}
	// Backward-shift: pull every displaced follower into the hole so
	// no tombstones accumulate and probe runs stay contiguous.
	j := i
	for {
		j = (j + 1) & mask
		s := t.slots[j]
		if s.id == 0 {
			break
		}
		// s may fill the hole only if its home position does not lie
		// strictly between the hole and s (cyclically) — otherwise the
		// probe chain from its home would break at the hole.
		if (j-t.home(s.id))&mask >= (j-i)&mask {
			t.slots[i] = s
			i = j
		}
	}
	t.slots[i] = connSlot{}
	t.used--
}

// forEach visits every registered connection in slot order.
func (t *connTable) forEach(fn func(*Conn)) {
	for i := range t.slots {
		if t.slots[i].id != 0 {
			fn(t.slots[i].c)
		}
	}
}
