package vnet

import (
	"math/rand"
	"testing"
)

// TestConnTableChurn cross-checks the open-addressed connection table
// against a reference map under randomized add/get/del churn,
// including the backward-shift deletion path that keeps probe runs
// contiguous.
func TestConnTableChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var tab connTable
	ref := make(map[uint64]*Conn)
	nextID := uint64(1)
	live := []uint64{}

	for op := 0; op < 20000; op++ {
		switch r := rng.Intn(10); {
		case r < 4: // add
			c := &Conn{id: nextID}
			nextID++
			tab.add(c)
			ref[c.id] = c
			live = append(live, c.id)
		case r < 7 && len(live) > 0: // delete a live id
			i := rng.Intn(len(live))
			id := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			tab.del(id)
			delete(ref, id)
		default: // probe a mix of live and absent ids
			id := uint64(rng.Intn(int(nextID)) + 1)
			if got, want := tab.get(id), ref[id]; got != want {
				t.Fatalf("op %d: get(%d) = %p, want %p", op, id, got, want)
			}
		}
		if tab.len() != len(ref) {
			t.Fatalf("op %d: len = %d, want %d", op, tab.len(), len(ref))
		}
	}
	for id, want := range ref {
		if tab.get(id) != want {
			t.Fatalf("final: get(%d) mismatch", id)
		}
	}
	n := 0
	tab.forEach(func(*Conn) { n++ })
	if n != len(ref) {
		t.Fatalf("forEach visited %d conns, want %d", n, len(ref))
	}
	// Absent deletes are no-ops.
	tab.del(nextID + 100)
	if tab.len() != len(ref) {
		t.Fatal("deleting an absent id changed len")
	}
}
