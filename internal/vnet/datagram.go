package vnet

import (
	"errors"
	"fmt"

	"repro/internal/ip"
	"repro/internal/sim"
)

// PacketConn is a UDP-like unreliable, unordered (within the limits of
// the FIFO pipe model) datagram socket bound to a host port.
type PacketConn struct {
	h      *Host
	port   ip.Port
	inbox  *sim.Chan[Packet]
	closed bool
}

// ListenPacket binds a datagram socket to port (0 allocates an ephemeral
// port), performing the emulated socket()/bind() sequence.
func (h *Host) ListenPacket(p *sim.Proc, port ip.Port) (*PacketConn, error) {
	h.syscall(p, SyscallSocket)
	h.interceptBind(p)
	h.syscall(p, SyscallBind)
	if port == 0 {
		port = h.allocPort()
	} else if _, used := h.ports[port]; used {
		return nil, fmt.Errorf("listen-packet %v:%d: %w", h.addr, port, ErrPortAlreadyBound)
	}
	pc := &PacketConn{
		h:     h,
		port:  port,
		inbox: sim.NewChan[Packet](h.net.k, 1024),
	}
	h.ports[port] = &portEntry{packet: pc}
	return pc, nil
}

// LocalAddr returns the bound endpoint.
func (pc *PacketConn) LocalAddr() ip.Endpoint { return ip.Endpoint{Addr: pc.h.addr, Port: pc.port} }

// SendTo transmits one unreliable datagram to dst. Loss on any pipe
// silently drops it, like UDP.
func (pc *PacketConn) SendTo(p *sim.Proc, dst ip.Endpoint, data []byte) error {
	if pc.closed {
		return ErrClosed
	}
	pc.h.syscall(p, SyscallSend)
	buf := make([]byte, len(data))
	copy(buf, data)
	pc.h.net.transmit(pc.h, message{
		kind: kindDatagram,
		src:  pc.LocalAddr(), dst: dst,
		payload: buf, size: len(buf),
	}, false)
	return nil
}

// RecvFrom blocks for the next datagram.
func (pc *PacketConn) RecvFrom(p *sim.Proc) (Packet, error) {
	pc.h.syscall(p, SyscallRecv)
	pk, err := pc.inbox.Recv(p)
	if errors.Is(err, sim.ErrClosed) {
		return pk, ErrClosed
	}
	return pk, err
}

// RecvFromTimeout is RecvFrom with a deadline; ok=false means expired.
func (pc *PacketConn) RecvFromTimeout(p *sim.Proc, d sim.Duration) (Packet, bool, error) {
	pc.h.syscall(p, SyscallRecv)
	pk, ok, err := pc.inbox.RecvTimeout(p, d)
	if errors.Is(err, sim.ErrClosed) {
		return pk, ok, ErrClosed
	}
	return pk, ok, err
}

// Close releases the port.
//
//p2p:token
func (pc *PacketConn) Close() {
	if pc.closed {
		return
	}
	pc.closed = true
	delete(pc.h.ports, pc.port)
	pc.inbox.Close()
}
