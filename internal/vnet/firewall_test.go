package vnet

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/ip"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// newFirewalledEnv builds a two-host network with a rule table
// installed.
func newFirewalledEnv(classifier netem.Classifier) (*env, *netem.RuleSet) {
	k := sim.New(1)
	rs := netem.NewRuleSet()
	rs.SetClassifier(classifier)
	cfg := DefaultConfig()
	cfg.Rules = rs
	return &env{k: k, n: NewNetwork(k, nil, cfg)}, rs
}

// TestFirewallCostChargedToRTT is the Fig 6 mechanism end-to-end: ping
// RTT grows linearly with the number of filler rules under the linear
// classifier, because each traversal is charged Visited × PerRuleCost
// of virtual time.
func TestFirewallCostChargedToRTT(t *testing.T) {
	rtt := func(fillers int, classifier netem.Classifier) time.Duration {
		e, rs := newFirewalledEnv(classifier)
		a, b := e.twoHosts(t)
		netem.PadFiller(rs, fillers)
		var out time.Duration
		e.run(t, func(p *sim.Proc) {
			d, ok := a.Ping(p, b.Addr(), DefaultPingSize, time.Minute)
			if !ok {
				t.Fatal("ping lost")
			}
			out = d
			e.k.Stop()
		})
		return out
	}

	base := rtt(0, netem.ClassifierLinear)
	linear := rtt(50000, netem.ClassifierLinear)
	indexed := rtt(50000, netem.ClassifierIndexed)

	// Two traversals of 50k rules at DefaultPerRuleCost ≈ 4.8 ms.
	wantDelta := 2 * 50000 * netem.DefaultPerRuleCost
	if got := linear - base; got != wantDelta {
		t.Errorf("linear 50k-rule RTT delta = %v, want %v", got, wantDelta)
	}
	// The indexed classifier visits no filler rules for the 10/8 ping
	// path: the curve stays flat.
	if indexed != base {
		t.Errorf("indexed 50k-rule RTT = %v, want base %v", indexed, base)
	}
}

// TestFirewallDenyBehavesLikePartition: a deny rule drops reliable
// traffic with retransmission and backoff; removing the rule in time
// heals the path transparently, exactly like Partition/Heal.
func TestFirewallDenyBehavesLikePartition(t *testing.T) {
	e, rs := newFirewalledEnv(netem.ClassifierLinear)
	a, b := e.twoHosts(t)
	deny := rs.AddDeny(ip.NewPrefix(addrA, 32), ip.Prefix{})
	var dialErr error
	e.run(t, func(p *sim.Proc) {
		p.Go("server", func(p *sim.Proc) {
			l, err := b.Listen(p, 80)
			if err != nil {
				t.Errorf("listen: %v", err)
				return
			}
			l.Accept(p)
		})
		// Lift the deny after two RTO backoffs: the SYN's
		// retransmission heals the dial without the application
		// noticing.
		e.k.After(500*time.Millisecond, func() { rs.RemoveHandle(deny) })
		p.Yield()
		_, dialErr = a.Dial(p, ip.Endpoint{Addr: b.Addr(), Port: 80})
		e.k.Stop()
	})
	if dialErr != nil {
		t.Fatalf("dial through healed deny: %v", dialErr)
	}
	st := e.n.Stats()
	if st.RuleDenied == 0 {
		t.Error("no attempts accounted as rule-denied")
	}
	if st.Retransmits == 0 {
		t.Error("expected retransmissions while denied")
	}
}

// TestFirewallDenyPermanent: a deny that never lifts exhausts the
// handshake like an unreachable path.
func TestFirewallDenyPermanent(t *testing.T) {
	e, rs := newFirewalledEnv(netem.ClassifierIndexed)
	a, b := e.twoHosts(t)
	rs.AddDeny(ip.Prefix{}, ip.NewPrefix(addrB, 32))
	var dialErr error
	e.run(t, func(p *sim.Proc) {
		p.Go("server", func(p *sim.Proc) {
			l, err := b.Listen(p, 80)
			if err != nil {
				return
			}
			l.Accept(p)
		})
		p.Yield()
		_, dialErr = a.Dial(p, ip.Endpoint{Addr: b.Addr(), Port: 80})
		e.k.Stop()
	})
	if !errors.Is(dialErr, ErrTimeout) {
		t.Fatalf("dial err = %v, want ErrTimeout", dialErr)
	}
}

// TestFirewallPipeRuleStacksOnPath: a matched ActionPipe rule's pipe is
// traversed in addition to the access links (the paper's stacked-pipes
// mode) — its delay shows up in the RTT.
func TestFirewallPipeRuleStacksOnPath(t *testing.T) {
	e, rs := newFirewalledEnv(netem.ClassifierLinear)
	a, b := e.twoHosts(t)
	wan := netem.NewPipe(e.k, "wan", netem.PipeConfig{Delay: 40 * time.Millisecond})
	rs.AddPipe(ip.NewPrefix(addrA, 32), ip.NewPrefix(addrB, 32), wan)
	var rtt time.Duration
	e.run(t, func(p *sim.Proc) {
		d, ok := a.Ping(p, b.Addr(), DefaultPingSize, time.Minute)
		if !ok {
			t.Fatal("ping lost")
		}
		rtt = d
		e.k.Stop()
	})
	// Only the a→b direction matches the rule; the echo reply takes the
	// bare path. Each traversal visits the one-rule table once, so the
	// evaluation cost (2 × 48 ns) is noise at this scale but still
	// deterministic: compare exactly.
	want := 40*time.Millisecond + 2*netem.DefaultPerRuleCost
	if rtt != want {
		t.Fatalf("rtt = %v, want %v", rtt, want)
	}
}

// TestNilRulesTraceIdentical: a network with Config.Rules == nil must
// produce a byte-identical trace to one built before the firewall
// existed — the golden-trace compatibility guarantee.
func TestNilRulesTraceIdentical(t *testing.T) {
	runTraced := func(cfg Config) string {
		k := sim.New(7)
		lg := trace.New(0)
		n := NewNetwork(k, nil, cfg)
		n.SetTrace(lg)
		a, _ := n.AddHost(addrA, netem.PipeConfig{}, netem.PipeConfig{})
		b, _ := n.AddHost(addrB, netem.PipeConfig{Bandwidth: netem.Mbps, Delay: 5 * time.Millisecond}, netem.PipeConfig{Bandwidth: netem.Mbps, Delay: 5 * time.Millisecond})
		k.Go("server", func(p *sim.Proc) {
			l, err := b.Listen(p, 80)
			if err != nil {
				return
			}
			c, err := l.Accept(p)
			if err != nil {
				return
			}
			c.Recv(p)
		})
		k.Go("client", func(p *sim.Proc) {
			p.Yield()
			c, err := a.Dial(p, ip.Endpoint{Addr: b.Addr(), Port: 80})
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			c.Send(p, bytes.Repeat([]byte("x"), 1000))
			c.Close(p)
			p.Sleep(time.Second)
			k.Stop()
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := lg.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	plain := runTraced(DefaultConfig())
	nilRules := DefaultConfig()
	nilRules.Rules = nil
	if got := runTraced(nilRules); got != plain {
		t.Fatal("nil-rules trace differs from baseline")
	}
	// And an *empty* table differs only by cost zero — same events.
	withEmpty := DefaultConfig()
	withEmpty.Rules = netem.NewRuleSet()
	if got := runTraced(withEmpty); got != plain {
		t.Fatal("empty-table trace differs from baseline")
	}
}

// TestListenerCloseRefusesBacklog is the half-open regression test: a
// dialer whose connection was queued (SYN-ACK'd) but never accepted
// must observe a reset when the listener closes, and both hosts'
// connection tables must forget the connection.
func TestListenerCloseRefusesBacklog(t *testing.T) {
	e := newEnv()
	a, b := e.twoHosts(t)
	var recvErr error
	e.run(t, func(p *sim.Proc) {
		var l *Listener
		p.Go("server", func(p *sim.Proc) {
			var err error
			l, err = b.Listen(p, 80)
			if err != nil {
				t.Errorf("listen: %v", err)
			}
		})
		p.Yield()
		c, err := a.Dial(p, ip.Endpoint{Addr: b.Addr(), Port: 80})
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		// The dialer is established; the server side sits un-accepted
		// in the backlog. Close must refuse it, not strand it.
		l.Close()
		_, recvErr = c.Recv(p) // blocks until the RST lands
		if a.conns.len() != 0 {
			t.Errorf("dialer conn table has %d entries, want 0", a.conns.len())
		}
		if b.conns.len() != 0 {
			t.Errorf("listener conn table has %d entries, want 0", b.conns.len())
		}
		e.k.Stop()
	})
	if !errors.Is(recvErr, ErrClosed) {
		t.Fatalf("recv err = %v, want ErrClosed", recvErr)
	}
}
