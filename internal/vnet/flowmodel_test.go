package vnet_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/ip"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/vnet"
)

// TestFlowModelEndToEnd drives reliable connections over a flow-model
// network: concurrent bulk transfers through one shared uplink must
// all complete, share fairly (simultaneous completion), and leave a
// net.flow trail on the attached trace.
func TestFlowModelEndToEnd(t *testing.T) {
	k := sim.New(1)
	cfg := vnet.DefaultConfig()
	cfg.Model = netem.ModelFlow
	cfg.HandshakeTimeout = time.Hour
	net := vnet.NewNetwork(k, nil, cfg)
	log := trace.New(0)
	net.SetTrace(log)

	if _, ok := net.LinkModel().(interface{ SetTrace(*trace.Log) }); !ok {
		t.Fatal("flow model does not accept a tracer")
	}

	server, err := net.AddHost(ip.MustParseAddr("10.0.0.1"),
		netem.PipeConfig{Bandwidth: 2 * netem.Mbps, Delay: 5 * time.Millisecond},
		netem.PipeConfig{Bandwidth: 20 * netem.Mbps, Delay: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const clients = 3
	const size = 500_000 // 4 Mbit each; 3 concurrent over 2 Mbps = 6 s
	done := make([]sim.Time, clients)
	var hosts []*vnet.Host
	for i := 0; i < clients; i++ {
		h, err := net.AddHost(ip.MustParseAddr("10.0.1.1").Add(uint32(i)),
			netem.PipeConfig{Bandwidth: 20 * netem.Mbps, Delay: 5 * time.Millisecond},
			netem.PipeConfig{Bandwidth: 20 * netem.Mbps, Delay: 5 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		hosts = append(hosts, h)
	}
	k.Go("server", func(p *sim.Proc) {
		l, err := server.Listen(p, 80)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < clients; i++ {
			c, err := l.Accept(p)
			if err != nil {
				t.Error(err)
				return
			}
			k.Go("serve", func(p *sim.Proc) {
				c.SendMeta(p, size, nil)
				c.Close(p)
			})
		}
	})
	for i, h := range hosts {
		i, h := i, h
		k.Go(fmt.Sprintf("client-%d", i), func(p *sim.Proc) {
			p.Sleep(100 * time.Millisecond)
			c, err := h.Dial(p, ip.Endpoint{Addr: server.Addr(), Port: 80})
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			got := 0
			for got < size {
				pk, err := c.Recv(p)
				if err != nil {
					t.Errorf("client %d: %v", i, err)
					return
				}
				got += pk.Len()
			}
			done[i] = p.Now()
		})
	}
	if err := k.RunUntil(sim.Time(time.Hour)); err != nil {
		t.Fatal(err)
	}

	var min, max sim.Time
	for i, at := range done {
		if at == 0 {
			t.Fatalf("client %d did not finish", i)
		}
		if min == 0 || at < min {
			min = at
		}
		if at > max {
			max = at
		}
	}
	if spread := max.Sub(min); spread > 50*time.Millisecond {
		t.Errorf("completion spread %v; flow model should equalize concurrent transfers", spread)
	}
	if got := log.Count("net.flow"); got == 0 {
		t.Error("no net.flow trace events recorded")
	}
	stats, ok := net.FlowStats()
	if !ok {
		t.Fatal("FlowStats not available on a flow-model network")
	}
	if stats.Started == 0 || stats.Completed != stats.Started {
		t.Errorf("flow accounting off: %+v", stats)
	}
	if _, ok := vnet.NewNetwork(k, nil, vnet.DefaultConfig()).FlowStats(); ok {
		t.Error("pipe-model network reports FlowStats")
	}
	if hosts[0].LinkModel() != net.LinkModel() {
		t.Error("host does not expose the network's link model")
	}
}

// TestFlowWindowConfig wires vnet.Config.FlowWindow through to the
// flow engine: a windowed network batches its solves (Flushes advance)
// and still delivers the traffic; a reconfigure mid-run drains the
// pending batch instead of waiting out the window.
func TestFlowWindowConfig(t *testing.T) {
	k := sim.New(2)
	cfg := vnet.DefaultConfig()
	cfg.Model = netem.ModelFlow
	cfg.FlowWindow = 50 * time.Millisecond
	cfg.HandshakeTimeout = time.Hour
	net := vnet.NewNetwork(k, nil, cfg)

	server, err := net.AddHost(ip.MustParseAddr("10.0.0.1"),
		netem.PipeConfig{Bandwidth: 8 * netem.Mbps, Delay: 5 * time.Millisecond},
		netem.PipeConfig{Bandwidth: 8 * netem.Mbps, Delay: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	client, err := net.AddHost(ip.MustParseAddr("10.0.0.2"),
		netem.PipeConfig{Bandwidth: 8 * netem.Mbps, Delay: 5 * time.Millisecond},
		netem.PipeConfig{Bandwidth: 8 * netem.Mbps, Delay: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const size = 2_000_000
	var finished sim.Time
	k.Go("server", func(p *sim.Proc) {
		l, err := server.Listen(p, 80)
		if err != nil {
			t.Error(err)
			return
		}
		c, err := l.Accept(p)
		if err != nil {
			t.Error(err)
			return
		}
		c.SendMeta(p, size, nil)
		c.Close(p)
	})
	k.Go("client", func(p *sim.Proc) {
		c, err := client.Dial(p, ip.Endpoint{Addr: server.Addr(), Port: 80})
		if err != nil {
			t.Error(err)
			return
		}
		got := 0
		for got < size {
			pk, err := c.Recv(p)
			if err != nil {
				t.Error(err)
				return
			}
			got += pk.Len()
		}
		finished = p.Now()
	})
	// Degrade the client's downlink mid-transfer: the reconfigure must
	// flush the batch synchronously, so the engine has settled rates
	// before the new capacity applies.
	k.At(sim.Time(500*time.Millisecond), func() {
		net.SetLinkClass(client, topo.LinkClass{
			Name: "degraded", Down: 4 * netem.Mbps, Up: 4 * netem.Mbps, Latency: 5 * time.Millisecond,
		})
	})
	if err := k.RunUntil(sim.Time(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if finished == 0 {
		t.Fatal("transfer did not finish under a windowed flow model")
	}
	stats, ok := net.FlowStats()
	if !ok {
		t.Fatal("FlowStats not available")
	}
	if stats.Flushes == 0 {
		t.Errorf("windowed network never flushed a batch: %+v", stats)
	}
	if stats.Batched == 0 {
		t.Errorf("windowed network batched no churn events: %+v", stats)
	}
}
