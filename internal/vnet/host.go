package vnet

import (
	"fmt"

	"repro/internal/ip"
	"repro/internal/netem"
	"repro/internal/sim"
)

// Host is one virtual node: a network identity (the alias address), an
// access link (up/down pipes), a port table and a syscall meter. All
// blocking methods take the calling simulated process.
type Host struct {
	net      *Network
	addr     ip.Addr
	up, down *netem.Pipe
	ports    map[ip.Port]*portEntry
	nextPort ip.Port
	conns    connTable
	meter    SyscallMeter
	bindEnv  ip.Addr // non-zero: BINDIP interception active
	linkDown bool    // interface administratively down (Network.SetLinkUp)
	pingers  map[uint64]*pingWaiter
}

// LinkUp reports whether the host's interface is up (see
// Network.SetLinkUp).
func (h *Host) LinkUp() bool { return !h.linkDown }

type portEntry struct {
	listener *Listener
	packet   *PacketConn
}

// Addr returns the host's address (its virtualized network identity).
func (h *Host) Addr() ip.Addr { return h.addr }

// Network returns the network the host belongs to.
func (h *Host) Network() *Network { return h.net }

// UpPipe and DownPipe expose the access-link pipes for inspection.
func (h *Host) UpPipe() *netem.Pipe   { return h.up }
func (h *Host) DownPipe() *netem.Pipe { return h.down }

// LinkModel returns the link model carrying this host's traffic — the
// network-wide model chosen by Config.Model.
func (h *Host) LinkModel() netem.LinkModel { return h.net.model }

// Meter returns the host's syscall meter (counts and accumulated cost).
func (h *Host) Meter() *SyscallMeter { return &h.meter }

// SetBindEnv enables the BINDIP libc-interception model: every connect
// and listen is preceded by an extra getenv and bind charged to the
// process, and any explicit local address is overridden by env — the
// paper's "naive approach" in the Virtualization section. A zero
// address disables interception.
func (h *Host) SetBindEnv(addr ip.Addr) { h.bindEnv = addr }

// BindEnv returns the interception address (zero when disabled).
func (h *Host) BindEnv() ip.Addr { return h.bindEnv }

// syscall charges one emulated system call to the calling process.
func (h *Host) syscall(p *sim.Proc, s Syscall) {
	if d := h.meter.Charge(s); d > 0 {
		p.Sleep(d)
	}
}

// interceptBind models the modified-libc preamble: read BINDIP, then
// bind the socket to it (ignoring failure if already bound).
func (h *Host) interceptBind(p *sim.Proc) {
	if h.bindEnv.IsZero() {
		return
	}
	h.syscall(p, SyscallGetenv)
	h.syscall(p, SyscallBind)
}

// allocPort returns a fresh ephemeral port.
func (h *Host) allocPort() ip.Port {
	for {
		port := h.nextPort
		h.nextPort++
		if h.nextPort == 0 {
			h.nextPort = 49152
		}
		if _, used := h.ports[port]; !used {
			if port != 0 {
				return port
			}
		}
	}
}

// conn registers c in the host's connection table.
func (h *Host) addConn(c *Conn) { h.conns.add(c) }

// Dial opens a TCP-like connection to raddr, performing the emulated
// socket()/[bind()]/connect() sequence and a SYN/SYNACK handshake on the
// virtual network. It blocks until established, refused or timed out.
func (h *Host) Dial(p *sim.Proc, raddr ip.Endpoint) (*Conn, error) {
	h.syscall(p, SyscallSocket)
	h.interceptBind(p)
	h.syscall(p, SyscallConnect)

	local := ip.Endpoint{Addr: h.addr, Port: h.allocPort()}
	n := h.net
	n.nextID++
	c := &Conn{
		h:      h,
		id:     n.nextID,
		local:  local,
		remote: raddr,
		inbox:  sim.NewChan[Packet](n.k, 0),
		hs:     sim.NewCond(n.k),
	}
	h.addConn(c)
	sent := n.transmit(h, message{
		kind: kindSyn, src: local, dst: raddr, size: 20, connID: c.id,
	}, true)
	if !sent {
		h.conns.del(c.id)
		return nil, fmt.Errorf("dial %v: %w", raddr, ErrNetUnreachable)
	}
	if !c.established && !c.refused {
		c.hs.WaitTimeout(p, n.cfg.HandshakeTimeout)
	}
	switch {
	case c.established:
		return c, nil
	case c.refused:
		h.conns.del(c.id)
		return nil, fmt.Errorf("dial %v: %w", raddr, ErrConnRefused)
	default:
		h.conns.del(c.id)
		return nil, fmt.Errorf("dial %v: %w", raddr, ErrTimeout)
	}
}

// Listen binds a listener to port, performing the emulated
// socket()/bind()/listen() sequence (plus the interception preamble when
// BINDIP is set).
func (h *Host) Listen(p *sim.Proc, port ip.Port) (*Listener, error) {
	h.syscall(p, SyscallSocket)
	h.syscall(p, SyscallBind)
	h.interceptBind(p)
	h.syscall(p, SyscallListen)
	if _, used := h.ports[port]; used {
		return nil, fmt.Errorf("listen %v:%d: %w", h.addr, port, ErrPortAlreadyBound)
	}
	l := &Listener{
		h:       h,
		port:    port,
		backlog: sim.NewChan[*Conn](h.net.k, 128),
	}
	h.ports[port] = &portEntry{listener: l}
	return l, nil
}

// deliver dispatches an arriving message to the right socket. It runs
// inside kernel event callbacks.
//
//p2p:token
func (h *Host) deliver(m message) {
	n := h.net
	switch m.kind {
	case kindSyn:
		entry := h.ports[m.dst.Port]
		if entry == nil || entry.listener == nil || entry.listener.closed {
			n.transmit(h, message{kind: kindRst, src: m.dst, dst: m.src, size: 20, connID: m.connID}, true)
			return
		}
		c := &Conn{
			h:           h,
			id:          m.connID,
			local:       m.dst,
			remote:      m.src,
			inbox:       sim.NewChan[Packet](n.k, 0),
			hs:          sim.NewCond(n.k),
			established: true,
		}
		if !entry.listener.backlog.TrySend(c) {
			n.transmit(h, message{kind: kindRst, src: m.dst, dst: m.src, size: 20, connID: m.connID}, true)
			return
		}
		h.addConn(c)
		n.transmit(h, message{kind: kindSynAck, src: m.dst, dst: m.src, size: 20, connID: m.connID}, true)
	case kindSynAck:
		if c := h.conns.get(m.connID); c != nil && !c.established {
			c.established = true
			c.hs.Broadcast()
		}
	case kindRst:
		if c := h.conns.get(m.connID); c != nil {
			if !c.established {
				c.refused = true
				c.hs.Broadcast()
			} else {
				// A reset of an established connection (e.g. the peer's
				// listener closed with this conn still in its backlog)
				// tears the endpoint down: further sends fail and the
				// reader observes the close.
				h.conns.del(m.connID)
				c.closed = true
				c.abort()
			}
		}
	case kindData:
		if c := h.conns.get(m.connID); c != nil {
			c.onData(m.seq, Packet{Data: m.payload, Meta: m.meta, Size: m.size, From: m.src})
		}
	case kindFin:
		if c := h.conns.get(m.connID); c != nil {
			c.onFin(m.seq)
		}
	case kindDatagram:
		if entry := h.ports[m.dst.Port]; entry != nil && entry.packet != nil {
			entry.packet.inbox.TrySend(Packet{Data: m.payload, Meta: m.meta, Size: m.size, From: m.src})
		}
	case kindEchoReq:
		reply := message{
			kind: kindEchoRep, src: m.dst, dst: m.src,
			size: m.size, echoID: m.echoID,
		}
		n.transmit(h, reply, false)
	case kindEchoRep:
		if w := h.pingers[m.echoID]; w != nil {
			w.replied = true
			w.cond.Broadcast()
		}
	}
}
