// Package vnet provides virtual sockets over the emulated network: hosts
// with their own IP addresses (P2PLab's interface aliases), TCP-like
// connections, datagrams and ping, all scheduled on the virtual-time
// kernel and shaped by netem pipes.
//
// The layering mirrors P2PLab: a Host is a virtual node whose network
// identity is one alias address; its access link is a pair of pipes
// (up/down); a pluggable Fabric (the physical cluster model in
// internal/virt) inserts extra pipes, latency and firewall-rule cost on
// each path.
package vnet

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/flow"
	"repro/internal/ip"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Errors returned by socket operations.
var (
	ErrAddrInUse         = errors.New("vnet: address already in use")
	ErrConnRefused       = errors.New("vnet: connection refused")
	ErrTimeout           = errors.New("vnet: operation timed out")
	ErrClosed            = errors.New("vnet: connection closed")
	ErrNetUnreachable    = errors.New("vnet: network unreachable")
	ErrHostExists        = errors.New("vnet: host address already registered")
	ErrAdminDenied       = errors.New("vnet: administratively denied")
	ErrListenerBacklog   = errors.New("vnet: listener backlog full")
	ErrMessageTooLarge   = errors.New("vnet: message exceeds maximum size")
	ErrBindInterception  = errors.New("vnet: bind overridden by BINDIP interception")
	ErrPortAlreadyBound  = errors.New("vnet: port already bound")
	ErrUnknownListener   = errors.New("vnet: no listener on destination")
	ErrDialSelfUnhosted  = errors.New("vnet: destination host not registered")
	ErrTooManyRetransmit = errors.New("vnet: too many retransmissions")
)

// Route describes what a message traverses between the source host's
// up-pipe and the destination host's down-pipe.
type Route struct {
	// Pipes are traversed in order (physical NIC pipes, extra shaping).
	Pipes []*netem.Pipe
	// Latency is fixed additional one-way latency (inter-group latency).
	Latency time.Duration
	// Cost is CPU time charged to the sender before transmission
	// (firewall rule evaluation).
	Cost time.Duration
	// Drop administratively denies the path (firewall deny rule).
	Drop bool
}

// Fabric computes the route between two virtual node addresses. The
// zero fabric (nil) yields empty routes: only access links apply.
type Fabric interface {
	Route(src, dst ip.Addr, size int) Route
}

// TopoFabric is the simplest fabric: inter-group latency from a
// topology, no extra pipes. It models the paper's emulation model
// without the physical-cluster folding layer.
type TopoFabric struct {
	Topo *topo.Topology
}

// Route implements Fabric.
func (f *TopoFabric) Route(src, dst ip.Addr, _ int) Route {
	return Route{Latency: f.Topo.GroupLatency(src, dst)}
}

// Config tunes network-wide constants.
type Config struct {
	// SyscallCosts is the per-call virtual CPU cost table.
	SyscallCosts SyscallCosts
	// HandshakeTimeout bounds Dial.
	HandshakeTimeout time.Duration
	// RTO is the retransmission timeout for reliable (conn) messages
	// dropped by lossy pipes.
	RTO time.Duration
	// MaxRetransmits bounds retransmission attempts per message.
	MaxRetransmits int
	// HeaderBytes is the per-message wire overhead added to payload
	// sizes (TCP/IP header equivalent).
	HeaderBytes int
	// Model selects the link-emulation model for every message path:
	// netem.ModelPipe (the zero value, Dummynet-style per-pipe
	// charging) or netem.ModelFlow (max-min fair bandwidth sharing
	// across concurrent transfers; see repro/internal/flow). One
	// option flips a whole experiment between the two.
	Model netem.ModelKind
	// FlowWindow, under the flow model, batches the solver's re-rates:
	// churn events within one window of virtual time coalesce into a
	// single solve per affected component at the window boundary
	// (flow.Config.Window). 0 re-solves at every event. Ignored under
	// the pipe model.
	FlowWindow time.Duration
	// Rules, when non-nil, is the network-wide IPFW-style firewall:
	// every transmission attempt is classified src→dst through the
	// table, matched ActionPipe pipes stack onto the path (Dummynet
	// one-pass mode), an ActionDeny drops the attempt before any pipe
	// is charged (reliable traffic then behaves exactly as under a
	// partition: retransmit with backoff, reset on exhaustion, heal
	// transparently if the rule is removed in time), and the
	// evaluation cost — Visited × PerRuleCost, the paper's Fig 6
	// artifact — is charged to virtual time ahead of serialization.
	// nil (the default) skips classification entirely: traces are
	// byte-identical to a network without this field.
	Rules *netem.RuleSet
	// Obs, when non-nil, attaches the deterministic metric registry:
	// hot-path counters mirror NetworkStats with zero allocation, and
	// pull-style collectors expose connection, pipe and flow-solver
	// state at snapshot time. nil (the default) skips instrumentation;
	// either way traces are byte-identical (obs updates never touch
	// the RNG, the trace or the event queue).
	Obs *obs.Registry
}

// DefaultConfig returns the standard configuration.
func DefaultConfig() Config {
	return Config{
		SyscallCosts:     DefaultSyscallCosts(),
		HandshakeTimeout: 30 * time.Second,
		RTO:              200 * time.Millisecond,
		MaxRetransmits:   8,
		HeaderBytes:      40,
	}
}

// Network is the virtual internet: a registry of hosts plus the fabric
// connecting them.
type Network struct {
	k      *sim.Kernel
	fabric Fabric
	cfg    Config
	model  netem.LinkModel
	hosts  map[ip.Addr]*Host
	order  []*Host // deterministic iteration
	nextID uint64  // connection ids

	parts      []*partition // active partitions, creation order
	nextPartID int

	stats  NetworkStats
	om     netMetrics // hot-path obs counters; all-nil when Obs is unset
	tracer *trace.Log

	// pm is set when model is the store-and-forward pipe model, enabling
	// the pooled zero-allocation transmit path; flow-model networks keep
	// the callback-based path (the solver retains path slices).
	pm       *netem.PipeModel
	freeXfer *xfer
}

// netMetrics holds the pre-created obs counter handles the transmit
// path bumps alongside NetworkStats. With observability off every
// field is nil and each bump is one nil-check branch (see obs.Counter).
type netMetrics struct {
	sent, delivered, dropped *obs.Counter
	retransmits, ruleDenied  *obs.Counter
	bytesDelivered           *obs.Counter
}

// partition is one active administrative split: traffic between the a
// and b sides is dropped in both directions until healed.
type partition struct {
	id   int
	a, b map[ip.Addr]bool
}

// Partition splits the network between the two address sets: every
// transmission attempt with one endpoint in a and the other in b is
// dropped (not queued — see DESIGN.md decision 6) until Heal is called
// with the returned id. Reliable messages keep retrying with their
// usual backoff, so a short partition heals transparently while a long
// one exhausts retransmissions and surfaces as connection failures.
// Partitions may overlap; a path is blocked while any partition covers
// it. Addresses inside one side still reach each other.
func (n *Network) Partition(a, b []ip.Addr) int {
	p := &partition{id: n.nextPartID, a: make(map[ip.Addr]bool, len(a)), b: make(map[ip.Addr]bool, len(b))}
	n.nextPartID++
	for _, x := range a {
		p.a[x] = true
	}
	for _, x := range b {
		p.b[x] = true
	}
	n.parts = append(n.parts, p)
	if n.tracer != nil {
		n.tracer.Add(n.k.Now(), "net.partition", "", "partition %d: %d|%d host(s)", p.id, len(p.a), len(p.b))
	}
	return p.id
}

// Heal removes the partition with the given id; unknown ids are
// ignored (healing twice is harmless).
func (n *Network) Heal(id int) {
	for i, p := range n.parts {
		if p.id == id {
			n.parts = append(n.parts[:i], n.parts[i+1:]...)
			if n.tracer != nil {
				n.tracer.Add(n.k.Now(), "net.partition", "", "heal %d", id)
			}
			return
		}
	}
}

// Partitioned reports whether traffic between src and dst is currently
// blocked by an active partition.
func (n *Network) Partitioned(src, dst ip.Addr) bool {
	for _, p := range n.parts {
		if (p.a[src] && p.b[dst]) || (p.b[src] && p.a[dst]) {
			return true
		}
	}
	return false
}

// pathBlocked reports whether a transmission attempt between the two
// hosts is administratively impossible right now (a downed interface on
// either end, or an active partition between them).
func (n *Network) pathBlocked(src, dst *Host) bool {
	if src.linkDown || dst.linkDown {
		return true
	}
	return n.Partitioned(src.addr, dst.addr)
}

// resetConn tears down the sender side of an established connection
// whose reliable message exhausted retransmission — TCP's give-up
// reset. Without it a connection that straddles a long partition stays
// silently half-open forever and the application never redials; with
// it the local reader observes the close, drops the peer, and
// recovery (re-announce, redial) can happen after the heal. The remote
// side cannot be told (no packet reaches it) and stays half-open until
// its own traffic fails the same way.
//
//p2p:token called from the delivery/drop paths, which run inside the kernel loop
func (n *Network) resetConn(src *Host, m message) {
	if m.kind != kindData && m.kind != kindFin {
		return // handshakes are bounded by HandshakeTimeout already
	}
	c := src.conns.get(m.connID)
	if c == nil {
		return
	}
	if n.tracer != nil {
		n.tracer.Add(n.k.Now(), "net.reset", m.src.Addr.String(), "conn %d to %v reset", m.connID, m.dst)
	}
	src.conns.del(m.connID)
	c.closed = true
	c.abort()
}

// reconfigurePipe applies a runtime configuration change to one pipe
// and notifies the link model when it keeps per-pipe state of its own
// (the flow model re-solves the affected component). A no-op change —
// the new configuration equals the current one — is invisible: no
// cursor touch, no model notification, no trace record. That identity
// is load-bearing: the reconfiguration property tests require an
// identical-config reconfigure to be trace-identical to none.
func (n *Network) reconfigurePipe(p *netem.Pipe, cfg netem.PipeConfig) {
	old := p.Config()
	if cfg == old {
		return
	}
	if n.tracer != nil {
		n.tracer.Add(n.k.Now(), "net.reconf", p.Name(),
			"bw %d->%d delay %v->%v loss %g->%g", old.Bandwidth, cfg.Bandwidth,
			old.Delay, cfg.Delay, old.Loss, cfg.Loss)
	}
	// A batching model drains its coalesced churn before the config
	// changes, so the batch settles under the configuration it happened
	// under and the re-solve below observes settled rates.
	if fm, ok := n.model.(netem.FlushableModel); ok {
		fm.FlushBatch()
	}
	p.Reconfigure(cfg)
	if rm, ok := n.model.(netem.ReconfigurableModel); ok {
		rm.PipeReconfigured(p)
	}
}

// SetLinkClass re-rates a host's access link to a new class at the
// current virtual instant — P2PLab's Dummynet pipes reconfigured at run
// time. In-flight serializations are re-rated (netem.Pipe.Reconfigure)
// and, under the flow model, the affected components are re-solved.
func (n *Network) SetLinkClass(h *Host, class topo.LinkClass) {
	n.reconfigurePipe(h.up, netem.PipeConfig{Bandwidth: class.Up, Delay: class.Latency, Loss: class.Loss})
	n.reconfigurePipe(h.down, netem.PipeConfig{Bandwidth: class.Down, Delay: class.Latency, Loss: class.Loss})
}

// SetLinkLoss overrides the random-loss probability of a host's access
// link in both directions (a loss burst); the rest of the configuration
// is untouched.
func (n *Network) SetLinkLoss(h *Host, loss float64) {
	up := h.up.Config()
	up.Loss = loss
	n.reconfigurePipe(h.up, up)
	down := h.down.Config()
	down.Loss = loss
	n.reconfigurePipe(h.down, down)
}

// SetLinkUp raises or lowers a host's network interface. While down,
// every transmission attempt from or to the host is dropped (reliable
// traffic retries with backoff, so a short flap heals transparently).
func (n *Network) SetLinkUp(h *Host, up bool) {
	if h.linkDown == !up {
		return
	}
	h.linkDown = !up
	if n.tracer != nil {
		state := "up"
		if !up {
			state = "down"
		}
		n.tracer.Add(n.k.Now(), "net.link", h.addr.String(), "link %s", state)
	}
}

// SetTrace attaches an event log: every transmitted and delivered
// message is recorded ("net.send", "net.deliver", "net.drop"), and a
// flow-model network additionally records rate changes ("net.flow").
// Tracing large swarms is expensive; prefer a bounded log.
func (n *Network) SetTrace(l *trace.Log) {
	n.tracer = l
	if t, ok := n.model.(interface{ SetTrace(*trace.Log) }); ok {
		t.SetTrace(l)
	}
}

// NetworkStats aggregates network-wide counters.
type NetworkStats struct {
	MessagesSent      uint64
	MessagesDelivered uint64
	MessagesDropped   uint64
	Retransmits       uint64
	BytesDelivered    uint64
	// RuleDenied counts transmission attempts dropped by a firewall
	// ActionDeny rule (each retransmission attempt of the same message
	// counts once, mirroring how partitions account drops).
	RuleDenied uint64
}

// NewNetwork creates a network on kernel k. fabric may be nil.
func NewNetwork(k *sim.Kernel, fabric Fabric, cfg Config) *Network {
	var model netem.LinkModel
	switch cfg.Model {
	case netem.ModelFlow:
		model = flow.NewWithConfig(k, flow.Config{Window: cfg.FlowWindow})
	default:
		model = netem.NewPipeModel(k)
	}
	n := &Network{
		k:      k,
		fabric: fabric,
		cfg:    cfg,
		model:  model,
		hosts:  make(map[ip.Addr]*Host),
	}
	n.pm, _ = model.(*netem.PipeModel)
	n.initObs()
	return n
}

// Obs returns the network's metric registry, or nil when the network
// runs uninstrumented. Protocol layers (bt) use it to register their
// own instruments.
func (n *Network) Obs() *obs.Registry { return n.cfg.Obs }

// LinkModel returns the network's link model; a flow-model network
// returns the *flow.Model, whose Stats expose sharing activity.
func (n *Network) LinkModel() netem.LinkModel { return n.model }

// FlowStats returns the flow engine's counters and true when the
// network runs the flow model, or a zero value and false otherwise.
func (n *Network) FlowStats() (flow.Stats, bool) {
	if fm, ok := n.model.(*flow.Model); ok {
		return fm.Stats(), true
	}
	return flow.Stats{}, false
}

// Rules returns the network firewall table, or nil when the network
// runs without one. The table may be mutated at run time (scenario
// policy churn); under netem.ClassifierIndexed the index follows
// incrementally.
func (n *Network) Rules() *netem.RuleSet { return n.cfg.Rules }

// Kernel returns the kernel the network runs on.
func (n *Network) Kernel() *sim.Kernel { return n.k }

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Stats returns a snapshot of network counters.
func (n *Network) Stats() NetworkStats { return n.stats }

// AddHost registers a virtual node with the given address and access
// link. Pass zero-valued PipeConfigs for an unconstrained host (e.g. a
// tracker on a LAN).
func (n *Network) AddHost(addr ip.Addr, up, down netem.PipeConfig) (*Host, error) {
	if _, dup := n.hosts[addr]; dup {
		return nil, fmt.Errorf("%w: %v", ErrHostExists, addr)
	}
	h := &Host{
		net:      n,
		addr:     addr,
		up:       netem.NewPipe(n.k, addr.String()+"/up", up),
		down:     netem.NewPipe(n.k, addr.String()+"/down", down),
		ports:    make(map[ip.Port]*portEntry),
		nextPort: 49152,
		meter:    SyscallMeter{Costs: n.cfg.SyscallCosts},
	}
	n.hosts[addr] = h
	n.order = append(n.order, h)
	return h, nil
}

// AddHostClass registers a host whose access link follows a topology
// link class.
func (n *Network) AddHostClass(addr ip.Addr, class topo.LinkClass) (*Host, error) {
	up := netem.PipeConfig{Bandwidth: class.Up, Delay: class.Latency, Loss: class.Loss}
	down := netem.PipeConfig{Bandwidth: class.Down, Delay: class.Latency, Loss: class.Loss}
	return n.AddHost(addr, up, down)
}

// Host returns the host registered at addr, or nil.
func (n *Network) Host(addr ip.Addr) *Host { return n.hosts[addr] }

// Hosts returns all hosts in registration order. The slice is shared;
// do not mutate.
func (n *Network) Hosts() []*Host { return n.order }

// PopulateTopology creates one host per node of every leaf group,
// addressed sequentially inside the group prefix starting at offset 1.
// It returns the hosts in creation order.
func (n *Network) PopulateTopology(t *topo.Topology) ([]*Host, error) {
	var hosts []*Host
	for _, g := range t.LeafGroups() {
		for i := 0; i < g.Nodes; i++ {
			h, err := n.AddHostClass(g.Prefix.Nth(uint32(i+1)), g.Class)
			if err != nil {
				return nil, err
			}
			hosts = append(hosts, h)
		}
	}
	return hosts, nil
}

// msgKind discriminates wire messages.
type msgKind int

const (
	kindSyn msgKind = iota
	kindSynAck
	kindRst
	kindData
	kindFin
	kindDatagram
	kindEchoReq
	kindEchoRep
)

// message is one unit of transmission through the emulated network.
type message struct {
	kind     msgKind
	src, dst ip.Endpoint
	size     int // payload bytes, excluding header overhead
	payload  []byte
	meta     any    // protocol object for sparse payloads
	connID   uint64 // connection demultiplexing
	seq      uint64 // per-connection data sequence number
	echoID   uint64
}

func (m *message) wireSize(cfg *Config) int { return m.size + cfg.HeaderBytes }

// transmit schedules a message from src through every pipe on the path
// and delivers it at the destination host. reliable messages are
// retransmitted on loss up to MaxRetransmits. It returns false if the
// path is administratively denied or the destination is unknown.
//
//p2p:token transmit runs on the sender's simulated goroutine or an event callback
func (n *Network) transmit(src *Host, m message, reliable bool) bool {
	dst := n.hosts[m.dst.Addr]
	if dst == nil {
		n.stats.MessagesDropped++
		n.om.dropped.Inc()
		return false
	}
	var route Route
	if n.fabric != nil {
		route = n.fabric.Route(m.src.Addr, m.dst.Addr, m.wireSize(&n.cfg))
	}
	if route.Drop {
		n.stats.MessagesDropped++
		n.om.dropped.Inc()
		return false
	}
	n.stats.MessagesSent++
	n.om.sent.Inc()
	if n.tracer != nil {
		n.tracer.Add(n.k.Now(), "net.send", m.src.Addr.String(),
			"%d B to %v (kind %d)", m.wireSize(&n.cfg), m.dst, m.kind)
	}
	if n.pm != nil {
		x := n.acquireXfer()
		x.src, x.dst, x.m, x.route = src, dst, m, route
		x.reliable, x.tries = reliable, 0
		x.start = n.k.LoopNow().Add(route.Cost)
		x.size = m.wireSize(&n.cfg)
		x.attempt()
		return true
	}
	n.attempt(src, dst, m, route, 0, n.k.LoopNow().Add(route.Cost), reliable)
	return true
}

// xfer is the pooled state of one message's journey through the network
// under the pipe model: the path, the current hop, the retransmission
// count. Its callbacks (step through a constrained pipe, deliver, retry)
// are method values bound once at pool entry, so the per-message
// transmit path — previously three closures, a path slice and two Event
// handles per attempt, the largest allocation source in 10k-peer swarms
// — schedules with zero allocations in steady state.
type xfer struct {
	n        *Network
	src, dst *Host
	m        message
	route    Route
	size     int // wire size, header included
	tries    int
	start    sim.Time // current attempt's start instant
	reliable bool

	path    []*netem.Pipe
	pathBuf [4]*netem.Pipe // inline storage for the common 2-hop path
	hop     int            // next pipe to charge
	t       sim.Time       // arrival instant at path[hop]
	exit    sim.Time       // exit instant of the last pipe

	stepFn    func() // bound x.step
	deliverFn func() // bound x.deliver
	retryFn   func() // bound x.retry
	next      *xfer  // free list
}

// acquireXfer takes an xfer off the pool or builds one, binding its
// callback closures exactly once.
func (n *Network) acquireXfer() *xfer {
	x := n.freeXfer
	if x != nil {
		n.freeXfer = x.next
		x.next = nil
		return x
	}
	x = &xfer{n: n}
	x.stepFn = x.step
	x.deliverFn = x.deliver
	x.retryFn = x.retry
	return x
}

// releaseXfer returns a finished xfer to the pool, dropping payload and
// route references so pooled entries do not pin message data.
func (n *Network) releaseXfer(x *xfer) {
	x.m = message{}
	x.route = Route{}
	x.src, x.dst = nil, nil
	x.next = n.freeXfer
	n.freeXfer = x
}

// attempt mirrors Network.attempt for the pooled path: block check, rule
// evaluation, path construction, then the hop walk. The order of checks,
// stat bumps, trace records and event scheduling is identical, so traces
// are byte-for-byte those of the closure-based path.
//
//p2p:token
func (x *xfer) attempt() {
	n := x.n
	if n.pathBlocked(x.src, x.dst) {
		x.failed()
		return
	}
	var ruled []*netem.Pipe
	if n.cfg.Rules != nil {
		v := n.cfg.Rules.Eval(x.m.src.Addr, x.m.dst.Addr)
		x.start = x.start.Add(v.Cost)
		if v.Deny {
			n.stats.RuleDenied++
			n.om.ruleDenied.Inc()
			if n.tracer != nil {
				n.tracer.Add(n.k.Now(), "net.deny", x.m.src.Addr.String(),
					"%d B to %v denied by firewall", x.size, x.m.dst)
			}
			x.failed()
			return
		}
		ruled = v.Pipes
	}
	need := 2 + len(x.route.Pipes) + len(ruled)
	switch {
	case need <= len(x.pathBuf):
		x.path = x.pathBuf[:0]
	case cap(x.path) >= need:
		x.path = x.path[:0]
	default:
		x.path = make([]*netem.Pipe, 0, need)
	}
	x.path = append(x.path, x.src.up)
	x.path = append(x.path, x.route.Pipes...)
	x.path = append(x.path, ruled...)
	x.path = append(x.path, x.dst.down)
	x.hop, x.t = 0, x.start
	x.step()
}

// step charges pipes from x.hop onward, continuing inline through
// unconstrained pipes and parking on an event at each constrained pipe's
// exit instant — the pooled equivalent of PipeModel.Transfer's hop
// recursion.
//
//p2p:token
func (x *xfer) step() {
	n := x.n
	for {
		if x.hop == len(x.path) {
			x.exit = x.t
			n.k.Schedule(x.exit.Add(x.route.Latency), x.deliverFn)
			return
		}
		exit, ok := x.path[x.hop].ScheduleAt(x.t, x.size, n.k.Rand())
		if !ok {
			x.failed()
			return
		}
		x.hop++
		if exit == x.t {
			continue // unconstrained pipe: next hop inline
		}
		x.t = exit
		n.k.Schedule(exit, x.stepFn)
		return
	}
}

// deliver lands the message on the destination host and recycles the
// xfer. The message and destination are copied out first: deliver may
// synchronously trigger sends that reuse this pooled entry.
//
//p2p:token
func (x *xfer) deliver() {
	n := x.n
	n.stats.MessagesDelivered++
	n.stats.BytesDelivered += uint64(x.size)
	n.om.delivered.Inc()
	n.om.bytesDelivered.Add(uint64(x.size))
	if n.tracer != nil {
		n.tracer.Add(n.k.Now(), "net.deliver", x.m.dst.Addr.String(),
			"%d B from %v", x.size, x.m.src)
	}
	m, dst := x.m, x.dst
	n.releaseXfer(x)
	dst.deliver(m)
}

// retry launches the next attempt from the current instant.
//
//p2p:token
func (x *xfer) retry() {
	x.tries++
	x.start = x.n.k.LoopNow()
	x.attempt()
}

// failed handles a dropped attempt: backoff-retry for reliable messages
// with budget left, otherwise account the drop, reset the sender-side
// connection if reliable, and recycle the xfer.
//
//p2p:token
func (x *xfer) failed() {
	n := x.n
	if x.reliable && x.tries < n.cfg.MaxRetransmits {
		n.stats.Retransmits++
		n.om.retransmits.Inc()
		n.k.Schedule(x.start.Add(n.cfg.RTO*(1<<uint(x.tries))), x.retryFn)
		return
	}
	n.stats.MessagesDropped++
	n.om.dropped.Inc()
	if n.tracer != nil {
		n.tracer.Add(n.k.Now(), "net.drop", x.m.src.Addr.String(),
			"%d B to %v lost after %d attempt(s)", x.size, x.m.dst, x.tries+1)
	}
	if x.reliable {
		n.resetConn(x.src, x.m)
	}
	n.releaseXfer(x)
}

// attempt runs one transmission attempt starting at instant start: the
// configured link model carries the message over the path (sender
// up-link, fabric pipes, receiver down-link), then the fixed route
// latency applies and the message is delivered. A dropped attempt of a
// reliable message retries with exponential backoff from the attempt's
// start instant.
//
//p2p:token
func (n *Network) attempt(src, dst *Host, m message, route Route, tries int, start sim.Time, reliable bool) {
	size := m.wireSize(&n.cfg)
	failed := func() {
		if reliable && tries < n.cfg.MaxRetransmits {
			n.stats.Retransmits++
			n.om.retransmits.Inc()
			retryAt := start.Add(n.cfg.RTO * (1 << uint(tries)))
			n.k.At(retryAt, func() {
				n.attempt(src, dst, m, route, tries+1, n.k.LoopNow(), reliable)
			})
			return
		}
		n.stats.MessagesDropped++
		n.om.dropped.Inc()
		if n.tracer != nil {
			n.tracer.Add(n.k.Now(), "net.drop", m.src.Addr.String(),
				"%d B to %v lost after %d attempt(s)", size, m.dst, tries+1)
		}
		if reliable {
			n.resetConn(src, m)
		}
	}
	// A blocked path (partition or downed interface) drops the attempt
	// before any pipe is charged: partitions drop rather than queue
	// (DESIGN.md decision 6), and retransmission is what heals.
	if n.pathBlocked(src, dst) {
		failed()
		return
	}
	// Firewall classification (DESIGN.md decision 7). Every attempt is
	// classified — each packet traversal pays the rule-evaluation cost,
	// as in ipfw — so a deny rule added or removed mid-run takes effect
	// on the next retransmission, exactly like a partition.
	var ruled []*netem.Pipe
	if n.cfg.Rules != nil {
		v := n.cfg.Rules.Eval(m.src.Addr, m.dst.Addr)
		// The scan is paid before the verdict applies (as in ipfw, and
		// as virt.Cluster.Route orders it): a denied attempt still
		// advances its retransmission schedule by the evaluation cost.
		start = start.Add(v.Cost)
		if v.Deny {
			n.stats.RuleDenied++
			n.om.ruleDenied.Inc()
			if n.tracer != nil {
				n.tracer.Add(n.k.Now(), "net.deny", m.src.Addr.String(),
					"%d B to %v denied by firewall", size, m.dst)
			}
			failed()
			return
		}
		ruled = v.Pipes
	}
	pipes := make([]*netem.Pipe, 0, 2+len(route.Pipes)+len(ruled))
	pipes = append(pipes, src.up)
	pipes = append(pipes, route.Pipes...)
	pipes = append(pipes, ruled...)
	pipes = append(pipes, dst.down)

	n.model.Transfer(start, size, pipes, n.k.Rand(), func(exit sim.Time, ok bool) {
		if !ok {
			failed()
			return
		}
		n.k.At(exit.Add(route.Latency), func() {
			n.stats.MessagesDelivered++
			n.stats.BytesDelivered += uint64(size)
			n.om.delivered.Inc()
			n.om.bytesDelivered.Add(uint64(size))
			if n.tracer != nil {
				n.tracer.Add(n.k.Now(), "net.deliver", m.dst.Addr.String(),
					"%d B from %v", size, m.src)
			}
			dst.deliver(m)
		})
	})
}
