package vnet

import (
	"repro/internal/flow"
	"repro/internal/netem"
)

// initObs registers the network's instruments on cfg.Obs: the hot-path
// counter handles the transmit path bumps (zero-allocation mirrors of
// NetworkStats) and pull-style collectors for state that subsystems
// already keep — connection tables, netem pipe stats and, under the
// flow model, the solver's counters. Collectors are evaluated only at
// snapshot time, in kernel context, and all of them reduce by
// order-independent sums, so host-map iteration order cannot leak into
// the exposed values.
func (n *Network) initObs() {
	reg := n.cfg.Obs
	if reg == nil {
		return
	}

	n.om = netMetrics{
		sent:           reg.Counter("p2plab_net_messages_sent_total", "Messages handed to the transmit path."),
		delivered:      reg.Counter("p2plab_net_messages_delivered_total", "Messages delivered to a destination host."),
		dropped:        reg.Counter("p2plab_net_messages_dropped_total", "Messages dropped (loss, overflow, partition, retransmit exhaustion)."),
		retransmits:    reg.Counter("p2plab_net_retransmits_total", "Retransmission attempts of reliable messages."),
		ruleDenied:     reg.Counter("p2plab_net_rule_denied_total", "Transmission attempts dropped by a firewall deny rule."),
		bytesDelivered: reg.Counter("p2plab_net_bytes_delivered_total", "Wire bytes delivered (payload plus header overhead)."),
	}

	// Connection table: established vs half-open (a conn a handshake or
	// a one-sided reset has left without the established flag).
	reg.GaugeFunc("p2plab_net_conns_established", "Connections currently established, summed over hosts.", func() float64 {
		est := 0
		for _, h := range n.order {
			h.conns.forEach(func(c *Conn) {
				if c.established {
					est++
				}
			})
		}
		return float64(est)
	})
	reg.GaugeFunc("p2plab_net_conns_half_open", "Connections registered but not (or no longer) established.", func() float64 {
		half := 0
		for _, h := range n.order {
			h.conns.forEach(func(c *Conn) {
				if !c.established {
					half++
				}
			})
		}
		return float64(half)
	})

	// Access-link pipes, aggregated over every host's up and down pipe
	// (fabric-internal and firewall pipes are owned elsewhere).
	eachPipe := func(f func(p *netem.Pipe)) {
		for _, h := range n.order {
			f(h.up)
			f(h.down)
		}
	}
	reg.CounterFunc("p2plab_netem_messages_total", "Messages accepted by access-link pipes.", func() uint64 {
		var v uint64
		eachPipe(func(p *netem.Pipe) { v += p.Stats().Messages })
		return v
	})
	reg.CounterFunc("p2plab_netem_bytes_total", "Bytes accepted by access-link pipes.", func() uint64 {
		var v uint64
		eachPipe(func(p *netem.Pipe) { v += p.Stats().Bytes })
		return v
	})
	reg.CounterFunc("p2plab_netem_dropped_loss_total", "Pipe drops from random loss.", func() uint64 {
		var v uint64
		eachPipe(func(p *netem.Pipe) { v += p.Stats().Lost })
		return v
	})
	reg.CounterFunc("p2plab_netem_dropped_overflow_total", "Pipe drops from bounded-queue overflow.", func() uint64 {
		var v uint64
		eachPipe(func(p *netem.Pipe) { v += p.Stats().Overflows })
		return v
	})
	reg.GaugeFunc("p2plab_netem_backlog_bytes", "Bytes queued behind access-link serializers right now.", func() float64 {
		now := n.k.Now()
		var v int64
		eachPipe(func(p *netem.Pipe) { v += p.Backlog(now) })
		return float64(v)
	})
	// Mean lifetime utilization of the bandwidth-limited access pipes:
	// accepted bits over capacity×elapsed, aggregated network-wide.
	reg.GaugeFunc("p2plab_netem_utilization_mean", "Accepted bits / (capacity x elapsed) over limited access pipes.", func() float64 {
		now := n.k.Now().Seconds()
		if now <= 0 {
			return 0
		}
		var bits, capacity float64
		eachPipe(func(p *netem.Pipe) {
			if bw := p.Config().Bandwidth; bw > 0 {
				bits += float64(p.Stats().Bytes) * 8
				capacity += float64(bw) * now
			}
		})
		if capacity == 0 {
			return 0
		}
		return bits / capacity
	})

	// Flow-solver counters, present only under the flow model.
	if fm, ok := n.model.(*flow.Model); ok {
		reg.CounterFunc("p2plab_flow_solves_total", "Component re-solves of the max-min fair share.", func() uint64 {
			return fm.Stats().Solves
		})
		reg.CounterFunc("p2plab_flow_solved_flows_total", "Flows re-leveled across all re-solves.", func() uint64 {
			return fm.Stats().SolvedFlows
		})
		reg.CounterFunc("p2plab_flow_flushes_total", "Batch windows drained (window > 0 only).", func() uint64 {
			return fm.Stats().Flushes
		})
		reg.CounterFunc("p2plab_flow_batched_total", "Churn events coalesced into batches.", func() uint64 {
			return fm.Stats().Batched
		})
		reg.CounterFunc("p2plab_flow_started_total", "Flows admitted.", func() uint64 {
			return fm.Stats().Started
		})
		reg.CounterFunc("p2plab_flow_completed_total", "Flows delivered.", func() uint64 {
			return fm.Stats().Completed
		})
		reg.GaugeFunc("p2plab_flow_flows_per_solve", "Mean flows re-leveled per component re-solve.", func() float64 {
			st := fm.Stats()
			if st.Solves == 0 {
				return 0
			}
			return float64(st.SolvedFlows) / float64(st.Solves)
		})
	}
}
