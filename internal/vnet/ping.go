package vnet

import (
	"time"

	"repro/internal/ip"
	"repro/internal/sim"
)

// pingWaiter tracks one outstanding echo request.
type pingWaiter struct {
	cond    *sim.Cond
	replied bool
}

// DefaultPingSize is the classic 56-byte ICMP echo payload.
const DefaultPingSize = 56

// Ping sends one echo request of size bytes from the host to dst and
// returns the measured round-trip time on the virtual clock — the
// measurement behind the paper's Fig 6 (RTT vs firewall rules) and
// Fig 7 (853 ms topology check). ok=false means the reply did not
// arrive within timeout (lost, denied, or unknown destination).
func (h *Host) Ping(p *sim.Proc, dst ip.Addr, size int, timeout time.Duration) (time.Duration, bool) {
	n := h.net
	n.nextID++
	id := n.nextID
	w := &pingWaiter{cond: sim.NewCond(n.k)}
	if h.pingers == nil {
		h.pingers = make(map[uint64]*pingWaiter)
	}
	h.pingers[id] = w
	defer delete(h.pingers, id)

	start := p.Now()
	sent := n.transmit(h, message{
		kind: kindEchoReq,
		src:  ip.Endpoint{Addr: h.addr},
		dst:  ip.Endpoint{Addr: dst},
		size: size, echoID: id,
	}, false)
	if !sent {
		return 0, false
	}
	if !w.replied {
		w.cond.WaitTimeout(p, timeout)
	}
	if !w.replied {
		return 0, false
	}
	return time.Duration(p.Now().Sub(start)), true
}

// PingStats summarizes repeated pings, like the min/avg/max line of the
// ping utility (used for Fig 6's "round trip time (avg, min, max)").
type PingStats struct {
	Sent, Received int
	Min, Avg, Max  time.Duration
}

// PingSeries sends count pings separated by interval and aggregates the
// results.
func (h *Host) PingSeries(p *sim.Proc, dst ip.Addr, size, count int, interval, timeout time.Duration) PingStats {
	var st PingStats
	var total time.Duration
	for i := 0; i < count; i++ {
		if i > 0 {
			p.Sleep(interval)
		}
		st.Sent++
		rtt, ok := h.Ping(p, dst, size, timeout)
		if !ok {
			continue
		}
		st.Received++
		total += rtt
		if st.Min == 0 || rtt < st.Min {
			st.Min = rtt
		}
		if rtt > st.Max {
			st.Max = rtt
		}
	}
	if st.Received > 0 {
		st.Avg = total / time.Duration(st.Received)
	}
	return st
}
