package vnet

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/ip"
	"repro/internal/netem"
	"repro/internal/sim"
)

func TestConnExactlyOnceInOrderProperty(t *testing.T) {
	// Over a lossy link, a reliable connection delivers every message
	// exactly once and in order, for any message-count/loss draw.
	f := func(countRaw, lossRaw uint8) bool {
		count := int(countRaw%40) + 1
		loss := float64(lossRaw%30) / 100 // 0..0.29
		k := sim.New(int64(countRaw)*31 + int64(lossRaw))
		n := NewNetwork(k, nil, DefaultConfig())
		a, err := n.AddHost(addrA, netem.PipeConfig{Loss: loss}, netem.PipeConfig{})
		if err != nil {
			return false
		}
		b, err := n.AddHost(addrB, netem.PipeConfig{}, netem.PipeConfig{})
		if err != nil {
			return false
		}
		var got []int
		k.Go("server", func(p *sim.Proc) {
			l, err := b.Listen(p, 80)
			if err != nil {
				return
			}
			c, err := l.Accept(p)
			if err != nil {
				return
			}
			for {
				pk, err := c.Recv(p)
				if err != nil {
					return
				}
				got = append(got, int(pk.Data[0]))
			}
		})
		k.Go("client", func(p *sim.Proc) {
			p.Yield()
			c, err := a.Dial(p, ip.Endpoint{Addr: addrB, Port: 80})
			if err != nil {
				return
			}
			for i := 0; i < count; i++ {
				c.Send(p, []byte{byte(i)})
			}
			c.Close(p)
		})
		if err := k.Run(); err != nil {
			return false
		}
		if len(got) != count {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDeliveryNeverBeforePhysicalMinimumProperty(t *testing.T) {
	// No message can arrive before serialization + 2×latency allow,
	// for any size and bandwidth draw.
	f := func(sizeRaw uint16, bwRaw uint8) bool {
		size := int(sizeRaw%30000) + 1
		bw := (int64(bwRaw%100) + 1) * 100_000 // 0.1..10 Mb/s
		latency := 10 * time.Millisecond
		k := sim.New(1)
		n := NewNetwork(k, nil, DefaultConfig())
		a, _ := n.AddHost(addrA, netem.PipeConfig{Bandwidth: bw, Delay: latency}, netem.PipeConfig{})
		b, _ := n.AddHost(addrB, netem.PipeConfig{}, netem.PipeConfig{Delay: latency})
		var sentAt, recvAt sim.Time
		k.Go("server", func(p *sim.Proc) {
			l, _ := b.Listen(p, 80)
			c, err := l.Accept(p)
			if err != nil {
				return
			}
			if _, err := c.Recv(p); err == nil {
				recvAt = p.Now()
			}
		})
		k.Go("client", func(p *sim.Proc) {
			p.Yield()
			c, err := a.Dial(p, ip.Endpoint{Addr: addrB, Port: 80})
			if err != nil {
				return
			}
			sentAt = p.Now()
			c.Send(p, make([]byte, size))
		})
		if err := k.Run(); err != nil {
			return false
		}
		if recvAt == 0 {
			return false
		}
		wire := size + n.Config().HeaderBytes
		minTransit := time.Duration(float64(wire*8)/float64(bw)*float64(time.Second)) + 2*latency
		return recvAt.Sub(sentAt) >= minTransit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
