package vnet

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/ip"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// TestPartitionBlocksAndHeals: datagrams between partitioned hosts are
// dropped in both directions; traffic inside one side still flows; the
// heal restores everything.
func TestPartitionBlocksAndHeals(t *testing.T) {
	e := newEnv()
	a, b := e.twoHosts(t)
	c, err := e.n.AddHost(ip.MustParseAddr("10.0.0.3"), netem.PipeConfig{}, netem.PipeConfig{})
	if err != nil {
		t.Fatal(err)
	}

	recvCount := func(p *sim.Proc, pc *PacketConn) int {
		n := 0
		for {
			if _, ok, _ := pc.RecvFromTimeout(p, 50*time.Millisecond); !ok {
				return n
			}
			n++
		}
	}
	id := e.n.Partition([]ip.Addr{a.Addr()}, []ip.Addr{b.Addr()})
	e.run(t, func(p *sim.Proc) {
		pcA, _ := a.ListenPacket(p, 4000)
		pcB, _ := b.ListenPacket(p, 4000)
		pcC, _ := c.ListenPacket(p, 4000)

		// a -> b blocked, b -> a blocked, a -> c unaffected.
		pcA.SendTo(p, ip.Endpoint{Addr: b.Addr(), Port: 4000}, []byte("x"))
		pcB.SendTo(p, ip.Endpoint{Addr: a.Addr(), Port: 4000}, []byte("x"))
		pcA.SendTo(p, ip.Endpoint{Addr: c.Addr(), Port: 4000}, []byte("x"))
		if n := recvCount(p, pcB); n != 0 {
			t.Errorf("partitioned a->b delivered %d datagrams", n)
		}
		if n := recvCount(p, pcA); n != 0 {
			t.Errorf("partitioned b->a delivered %d datagrams", n)
		}
		if n := recvCount(p, pcC); n != 1 {
			t.Errorf("unpartitioned a->c delivered %d datagrams, want 1", n)
		}

		e.n.Heal(id)
		e.n.Heal(id) // healing twice is harmless
		pcA.SendTo(p, ip.Endpoint{Addr: b.Addr(), Port: 4000}, []byte("x"))
		if n := recvCount(p, pcB); n != 1 {
			t.Errorf("healed a->b delivered %d datagrams, want 1", n)
		}
	})
	if e.n.Stats().MessagesDropped != 2 {
		t.Errorf("dropped %d messages, want 2", e.n.Stats().MessagesDropped)
	}
}

// TestPartitionReliableRetransmitSurvives: a reliable message sent
// into a short partition is retransmitted with backoff and delivered
// after the heal — short partitions are transparent to connections.
func TestPartitionReliableRetransmitSurvives(t *testing.T) {
	e := newEnv()
	a, b := e.twoHosts(t)
	id := 0
	e.run(t, func(p *sim.Proc) {
		l, _ := b.Listen(p, 5000)
		var srv *Conn
		done := sim.NewCond(e.k)
		e.k.Go("server", func(p *sim.Proc) {
			srv, _ = l.Accept(p)
			if srv == nil {
				return
			}
			if _, err := srv.Recv(p); err != nil {
				t.Errorf("server recv: %v", err)
			}
			done.Broadcast()
		})
		conn, err := a.Dial(p, ip.Endpoint{Addr: b.Addr(), Port: 5000})
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		// Partition for ~1 s: the first retransmits fail, a later
		// backoff lands after the heal.
		id = e.n.Partition([]ip.Addr{a.Addr()}, []ip.Addr{b.Addr()})
		e.k.After(time.Second, func() { e.n.Heal(id) })
		if err := conn.Send(p, []byte("through the storm")); err != nil {
			t.Fatalf("send: %v", err)
		}
		done.Wait(p)
	})
	if e.n.Stats().Retransmits == 0 {
		t.Error("no retransmissions recorded across the partition")
	}
}

// TestPartitionResetsExhaustedConn: a partition longer than the whole
// retransmission schedule resets the sender's connection (TCP's
// give-up), surfacing as ErrClosed instead of a silent forever-stall.
func TestPartitionResetsExhaustedConn(t *testing.T) {
	e := newEnv()
	a, b := e.twoHosts(t)
	e.run(t, func(p *sim.Proc) {
		l, _ := b.Listen(p, 5000)
		e.k.Go("server", func(p *sim.Proc) {
			c, _ := l.Accept(p)
			if c != nil {
				// The remote side stays half-open (no packet can tell
				// it about the reset); a bounded wait stands in for the
				// application-level timeout a real server would run.
				c.RecvTimeout(p, 2*time.Minute)
			}
		})
		conn, err := a.Dial(p, ip.Endpoint{Addr: b.Addr(), Port: 5000})
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		e.n.Partition([]ip.Addr{a.Addr()}, []ip.Addr{b.Addr()}) // never healed
		if err := conn.Send(p, []byte("doomed")); err != nil {
			t.Fatalf("send: %v", err)
		}
		// The reset closes the local inbox once retransmits exhaust
		// (RTO 200ms doubling 8 times ~ 51s of backoff).
		if _, err := conn.Recv(p); !errors.Is(err, ErrClosed) {
			t.Errorf("recv after exhausted partition: %v, want ErrClosed", err)
		}
	})
}

// TestSetLinkUpDown: a downed interface blocks traffic in both
// directions and SetLinkUp(true) restores it.
func TestSetLinkUpDown(t *testing.T) {
	e := newEnv()
	a, b := e.twoHosts(t)
	e.run(t, func(p *sim.Proc) {
		pcA, _ := a.ListenPacket(p, 4000)
		pcB, _ := b.ListenPacket(p, 4000)
		e.n.SetLinkUp(b, false)
		if !a.LinkUp() || b.LinkUp() {
			t.Error("link state flags wrong")
		}
		pcA.SendTo(p, ip.Endpoint{Addr: b.Addr(), Port: 4000}, []byte("x"))
		if _, ok, _ := pcB.RecvFromTimeout(p, 100*time.Millisecond); ok {
			t.Error("datagram delivered to downed host")
		}
		e.n.SetLinkUp(b, true)
		pcA.SendTo(p, ip.Endpoint{Addr: b.Addr(), Port: 4000}, []byte("x"))
		if _, ok, _ := pcB.RecvFromTimeout(p, 100*time.Millisecond); !ok {
			t.Error("datagram not delivered after link-up")
		}
	})
}

// pingWorkload runs a fixed ping schedule against host b, applying
// mutate (if any) mid-run, and returns the rendered trace.
func pingWorkload(t *testing.T, model netem.ModelKind, mutate func(n *Network, b *Host)) string {
	t.Helper()
	k := sim.New(1)
	cfg := DefaultConfig()
	cfg.Model = model
	n := NewNetwork(k, nil, cfg)
	lg := trace.New(0)
	n.SetTrace(lg)
	a, err := n.AddHostClass(ip.MustParseAddr("10.0.0.1"), topo.DSL)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.AddHostClass(ip.MustParseAddr("10.0.0.2"), topo.DSL)
	if err != nil {
		t.Fatal(err)
	}
	if mutate != nil {
		k.At(sim.Time(450*time.Millisecond), func() { mutate(n, b) })
	}
	k.Go("pinger", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			a.Ping(p, b.Addr(), 1000, time.Second)
			p.Sleep(100 * time.Millisecond)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := lg.Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestIdenticalReconfigureTraceIdentical is the network-level half of
// the reconfiguration property: SetLinkClass to the class the host
// already has must be byte-identical to no reconfiguration at all,
// under both link models.
func TestIdenticalReconfigureTraceIdentical(t *testing.T) {
	for _, model := range []netem.ModelKind{netem.ModelPipe, netem.ModelFlow} {
		plain := pingWorkload(t, model, nil)
		noop := pingWorkload(t, model, func(n *Network, b *Host) {
			n.SetLinkClass(b, topo.DSL) // the class it already has
		})
		if plain != noop {
			t.Errorf("model %v: no-op SetLinkClass perturbed the trace", model)
		}
		changed := pingWorkload(t, model, func(n *Network, b *Host) {
			n.SetLinkClass(b, topo.Modem)
		})
		if plain == changed {
			t.Errorf("model %v: real SetLinkClass left the trace untouched", model)
		}
	}
}

// TestSetLinkClassRewiresRTT: after a mid-run class change the
// measured ping RTT follows the new class's bandwidth and latency.
func TestSetLinkClassRewiresRTT(t *testing.T) {
	e := newEnv()
	a, err := e.n.AddHostClass(ip.MustParseAddr("10.1.0.1"), topo.Campus)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.n.AddHostClass(ip.MustParseAddr("10.1.0.2"), topo.Campus)
	if err != nil {
		t.Fatal(err)
	}
	e.run(t, func(p *sim.Proc) {
		before, ok := a.Ping(p, b.Addr(), 1000, time.Second)
		if !ok {
			t.Fatal("ping before reconfigure lost")
		}
		e.n.SetLinkClass(a, topo.Modem)
		e.n.SetLinkClass(b, topo.Modem)
		after, ok := a.Ping(p, b.Addr(), 1000, 30*time.Second)
		if !ok {
			t.Fatal("ping after reconfigure lost")
		}
		// Campus: 5 ms latency each way; modem: 100 ms plus ~0.25 s of
		// 33.6 kbps serialization per direction.
		if after < 4*before {
			t.Errorf("RTT barely moved after degrade: %v -> %v", before, after)
		}
	})
}
