package vnet

import "time"

// Syscall identifies an emulated network system call, following the
// paper's Fig 5 (the calls used when establishing or accepting a TCP
// connection) plus the getenv the BINDIP interception performs.
type Syscall int

const (
	SyscallSocket Syscall = iota
	SyscallBind
	SyscallConnect
	SyscallListen
	SyscallAccept
	SyscallClose
	SyscallSend
	SyscallRecv
	SyscallGetenv
	numSyscalls
)

var syscallNames = [...]string{
	"socket", "bind", "connect", "listen", "accept", "close",
	"send", "recv", "getenv",
}

// String returns the libc name of the call.
func (s Syscall) String() string {
	if s < 0 || int(s) >= len(syscallNames) {
		return "syscall(?)"
	}
	return syscallNames[s]
}

// SyscallCosts models the virtual CPU time of each emulated system call.
// The defaults are calibrated so a socket+connect+close cycle costs
// 10.22 µs, the paper's measured baseline; the BINDIP interception adds
// one getenv and one bind to every connect or listen, raising the cycle
// to 10.79 µs — the paper's measured worst case.
type SyscallCosts [numSyscalls]time.Duration

// DefaultSyscallCosts returns the calibrated cost table.
func DefaultSyscallCosts() SyscallCosts {
	var c SyscallCosts
	c[SyscallSocket] = 2100 * time.Nanosecond
	c[SyscallBind] = 450 * time.Nanosecond
	c[SyscallConnect] = 4000 * time.Nanosecond
	c[SyscallListen] = 600 * time.Nanosecond
	c[SyscallAccept] = 3000 * time.Nanosecond
	c[SyscallClose] = 4120 * time.Nanosecond
	c[SyscallSend] = 900 * time.Nanosecond
	c[SyscallRecv] = 900 * time.Nanosecond
	c[SyscallGetenv] = 120 * time.Nanosecond
	return c
}

// SyscallMeter counts emulated system calls and accumulates their cost.
// Each Host owns one; the bind-interception experiment reads it.
type SyscallMeter struct {
	Costs  SyscallCosts
	Counts [numSyscalls]uint64
	Total  time.Duration
}

// Charge records one invocation of s and returns its cost so callers can
// charge it to virtual time.
func (m *SyscallMeter) Charge(s Syscall) time.Duration {
	m.Counts[s]++
	d := m.Costs[s]
	m.Total += d
	return d
}

// Count returns how many times s was invoked.
func (m *SyscallMeter) Count(s Syscall) uint64 { return m.Counts[s] }
