package vnet

import (
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/ip"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

var (
	addrA = ip.MustParseAddr("10.0.0.1")
	addrB = ip.MustParseAddr("10.0.0.2")
)

// env bundles a kernel and network for tests.
type env struct {
	k *sim.Kernel
	n *Network
}

func newEnv() *env {
	k := sim.New(1)
	return &env{k: k, n: NewNetwork(k, nil, DefaultConfig())}
}

// run spawns fn as the root process and runs the kernel to completion.
func (e *env) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	e.k.Go("test-root", fn)
	if err := e.k.Run(); err != nil {
		t.Fatalf("kernel: %v", err)
	}
}

// twoHosts registers two unconstrained hosts.
func (e *env) twoHosts(t *testing.T) (*Host, *Host) {
	t.Helper()
	a, err := e.n.AddHost(addrA, netem.PipeConfig{}, netem.PipeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.n.AddHost(addrB, netem.PipeConfig{}, netem.PipeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestAddHostDuplicate(t *testing.T) {
	e := newEnv()
	e.twoHosts(t)
	if _, err := e.n.AddHost(addrA, netem.PipeConfig{}, netem.PipeConfig{}); !errors.Is(err, ErrHostExists) {
		t.Fatalf("err = %v, want ErrHostExists", err)
	}
}

func TestDialAcceptRoundTrip(t *testing.T) {
	e := newEnv()
	a, b := e.twoHosts(t)
	var got string
	e.run(t, func(p *sim.Proc) {
		p.Go("server", func(p *sim.Proc) {
			l, err := b.Listen(p, 80)
			if err != nil {
				t.Errorf("listen: %v", err)
				return
			}
			c, err := l.Accept(p)
			if err != nil {
				t.Errorf("accept: %v", err)
				return
			}
			pk, err := c.Recv(p)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			got = string(pk.Data)
			c.Close(p)
			l.Close()
		})
		p.Yield() // let the server listen first
		c, err := a.Dial(p, ip.Endpoint{Addr: addrB, Port: 80})
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		if err := c.Send(p, []byte("hello")); err != nil {
			t.Errorf("send: %v", err)
		}
		c.Close(p)
	})
	if got != "hello" {
		t.Fatalf("server received %q, want hello", got)
	}
}

func TestDialRefusedNoListener(t *testing.T) {
	e := newEnv()
	a, _ := e.twoHosts(t)
	e.run(t, func(p *sim.Proc) {
		_, err := a.Dial(p, ip.Endpoint{Addr: addrB, Port: 81})
		if !errors.Is(err, ErrConnRefused) {
			t.Errorf("err = %v, want ErrConnRefused", err)
		}
	})
}

func TestDialUnknownHost(t *testing.T) {
	e := newEnv()
	a, _ := e.twoHosts(t)
	e.run(t, func(p *sim.Proc) {
		_, err := a.Dial(p, ip.Endpoint{Addr: ip.MustParseAddr("10.9.9.9"), Port: 80})
		if !errors.Is(err, ErrNetUnreachable) {
			t.Errorf("err = %v, want ErrNetUnreachable", err)
		}
	})
}

func TestHandshakeLatency(t *testing.T) {
	// 30 ms access latency each side: SYN takes 60 ms, SYNACK 60 ms,
	// so Dial should return just past 120 ms.
	e := newEnv()
	cls := topo.LinkClass{Name: "t", Latency: 30 * time.Millisecond}
	a, err := e.n.AddHostClass(addrA, cls)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.n.AddHostClass(addrB, cls)
	if err != nil {
		t.Fatal(err)
	}
	var dialDone sim.Time
	e.run(t, func(p *sim.Proc) {
		p.Go("server", func(p *sim.Proc) {
			l, _ := b.Listen(p, 80)
			if l != nil {
				l.Accept(p)
			}
		})
		p.Yield()
		if _, err := a.Dial(p, ip.Endpoint{Addr: addrB, Port: 80}); err != nil {
			t.Errorf("dial: %v", err)
		}
		dialDone = p.Now()
	})
	lo, hi := sim.Time(120*time.Millisecond), sim.Time(121*time.Millisecond)
	if dialDone < lo || dialDone > hi {
		t.Fatalf("dial completed at %v, want ≈120ms", dialDone)
	}
}

func TestTransferTimeDSL(t *testing.T) {
	// 16000 B + 40 B header through a 128 kb/s up-link is ≈1.0025 s of
	// serialization, plus 2×30 ms latency and a 2 Mb/s down-link pass.
	e := newEnv()
	a, _ := e.n.AddHostClass(addrA, topo.DSL)
	b, _ := e.n.AddHostClass(addrB, topo.DSL)
	var recvAt sim.Time
	e.run(t, func(p *sim.Proc) {
		p.Go("server", func(p *sim.Proc) {
			l, _ := b.Listen(p, 80)
			c, err := l.Accept(p)
			if err != nil {
				return
			}
			if _, err := c.Recv(p); err == nil {
				recvAt = p.Now()
			}
		})
		p.Yield()
		c, err := a.Dial(p, ip.Endpoint{Addr: addrB, Port: 80})
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		sendStart := p.Now()
		c.Send(p, make([]byte, 16000))
		_ = sendStart
	})
	if recvAt == 0 {
		t.Fatal("message never delivered")
	}
	got := time.Duration(recvAt)
	// Expected: dial ≈128ms, then 1.0025s + 64ms + 60ms ≈ 1.13s more.
	if got < 1100*time.Millisecond || got > 1400*time.Millisecond {
		t.Fatalf("delivery at %v, want ≈1.25s", got)
	}
}

func TestSparseMessage(t *testing.T) {
	e := newEnv()
	a, b := e.twoHosts(t)
	type req struct{ Piece int }
	var got Packet
	e.run(t, func(p *sim.Proc) {
		p.Go("server", func(p *sim.Proc) {
			l, _ := b.Listen(p, 80)
			c, err := l.Accept(p)
			if err != nil {
				return
			}
			got, _ = c.Recv(p)
		})
		p.Yield()
		c, _ := a.Dial(p, ip.Endpoint{Addr: addrB, Port: 80})
		c.SendMeta(p, 16384, req{Piece: 7})
	})
	if got.Len() != 16384 {
		t.Fatalf("Len = %d, want 16384", got.Len())
	}
	if r, ok := got.Meta.(req); !ok || r.Piece != 7 {
		t.Fatalf("Meta = %#v", got.Meta)
	}
}

func TestMessagesArriveInOrder(t *testing.T) {
	e := newEnv()
	a, _ := e.n.AddHostClass(addrA, topo.DSL)
	b, _ := e.n.AddHostClass(addrB, topo.DSL)
	var got []int
	e.run(t, func(p *sim.Proc) {
		p.Go("server", func(p *sim.Proc) {
			l, _ := b.Listen(p, 80)
			c, err := l.Accept(p)
			if err != nil {
				return
			}
			for {
				pk, err := c.Recv(p)
				if err != nil {
					return
				}
				got = append(got, int(pk.Data[0]))
			}
		})
		p.Yield()
		c, _ := a.Dial(p, ip.Endpoint{Addr: addrB, Port: 80})
		for i := 0; i < 20; i++ {
			c.Send(p, []byte{byte(i)})
		}
		c.Close(p)
	})
	if len(got) != 20 {
		t.Fatalf("received %d messages, want 20", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
}

func TestCloseDrainsThenEOF(t *testing.T) {
	e := newEnv()
	a, b := e.twoHosts(t)
	var afterDrain error
	var drained bool
	e.run(t, func(p *sim.Proc) {
		p.Go("server", func(p *sim.Proc) {
			l, _ := b.Listen(p, 80)
			c, err := l.Accept(p)
			if err != nil {
				return
			}
			p.Sleep(time.Second) // let data and FIN arrive first
			if _, err := c.Recv(p); err == nil {
				drained = true
			}
			_, afterDrain = c.Recv(p)
		})
		p.Yield()
		c, _ := a.Dial(p, ip.Endpoint{Addr: addrB, Port: 80})
		c.Send(p, []byte("last"))
		c.Close(p)
	})
	if !drained {
		t.Fatal("buffered data lost on close")
	}
	if !errors.Is(afterDrain, ErrClosed) {
		t.Fatalf("after drain err = %v, want ErrClosed", afterDrain)
	}
}

func TestSendOnClosedConn(t *testing.T) {
	e := newEnv()
	a, b := e.twoHosts(t)
	e.run(t, func(p *sim.Proc) {
		p.Go("server", func(p *sim.Proc) {
			l, _ := b.Listen(p, 80)
			l.Accept(p)
		})
		p.Yield()
		c, _ := a.Dial(p, ip.Endpoint{Addr: addrB, Port: 80})
		c.Close(p)
		if err := c.Send(p, []byte("x")); !errors.Is(err, ErrClosed) {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	})
}

func TestListenPortConflict(t *testing.T) {
	e := newEnv()
	_, b := e.twoHosts(t)
	e.run(t, func(p *sim.Proc) {
		if _, err := b.Listen(p, 80); err != nil {
			t.Errorf("first listen: %v", err)
		}
		if _, err := b.Listen(p, 80); !errors.Is(err, ErrPortAlreadyBound) {
			t.Errorf("err = %v, want ErrPortAlreadyBound", err)
		}
	})
}

func TestListenerCloseReleasesPort(t *testing.T) {
	e := newEnv()
	_, b := e.twoHosts(t)
	e.run(t, func(p *sim.Proc) {
		l, err := b.Listen(p, 80)
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		l.Close()
		if _, err := b.Listen(p, 80); err != nil {
			t.Errorf("relisten after close: %v", err)
		}
	})
}

func TestStreamReadWrite(t *testing.T) {
	e := newEnv()
	a, b := e.twoHosts(t)
	var got []byte
	e.run(t, func(p *sim.Proc) {
		p.Go("server", func(p *sim.Proc) {
			l, _ := b.Listen(p, 80)
			c, err := l.Accept(p)
			if err != nil {
				return
			}
			buf := make([]byte, 3)
			for {
				n, err := c.Read(p, buf)
				got = append(got, buf[:n]...)
				if err == io.EOF {
					return
				}
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
			}
		})
		p.Yield()
		c, _ := a.Dial(p, ip.Endpoint{Addr: addrB, Port: 80})
		c.Write(p, []byte("hello, "))
		c.Write(p, []byte("world"))
		c.Close(p)
	})
	if string(got) != "hello, world" {
		t.Fatalf("stream read %q", got)
	}
}

func TestDatagramDelivery(t *testing.T) {
	e := newEnv()
	a, b := e.twoHosts(t)
	var got Packet
	e.run(t, func(p *sim.Proc) {
		p.Go("server", func(p *sim.Proc) {
			pc, err := b.ListenPacket(p, 5000)
			if err != nil {
				t.Errorf("listen-packet: %v", err)
				return
			}
			got, _ = pc.RecvFrom(p)
		})
		p.Yield()
		pc, _ := a.ListenPacket(p, 0)
		pc.SendTo(p, ip.Endpoint{Addr: addrB, Port: 5000}, []byte("dgram"))
	})
	if string(got.Data) != "dgram" {
		t.Fatalf("got %q", got.Data)
	}
	if got.From.Addr != addrA {
		t.Fatalf("From = %v, want %v", got.From.Addr, addrA)
	}
}

func TestDatagramLostOnLossyPipe(t *testing.T) {
	e := newEnv()
	a, err := e.n.AddHost(addrA, netem.PipeConfig{Loss: 1}, netem.PipeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := e.n.AddHost(addrB, netem.PipeConfig{}, netem.PipeConfig{})
	var ok bool
	e.run(t, func(p *sim.Proc) {
		p.Go("server", func(p *sim.Proc) {
			pc, _ := b.ListenPacket(p, 5000)
			_, ok, _ = pc.RecvFromTimeout(p, time.Second)
		})
		p.Yield()
		pc, _ := a.ListenPacket(p, 0)
		pc.SendTo(p, ip.Endpoint{Addr: addrB, Port: 5000}, []byte("x"))
	})
	if ok {
		t.Fatal("datagram should be lost on loss=1 pipe")
	}
}

func TestReliableConnSurvivesLoss(t *testing.T) {
	// 30% loss on the up-link: connection messages retransmit and all
	// arrive.
	e := newEnv()
	a, err := e.n.AddHost(addrA, netem.PipeConfig{Loss: 0.3}, netem.PipeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := e.n.AddHost(addrB, netem.PipeConfig{}, netem.PipeConfig{})
	var count int
	e.run(t, func(p *sim.Proc) {
		p.Go("server", func(p *sim.Proc) {
			l, _ := b.Listen(p, 80)
			c, err := l.Accept(p)
			if err != nil {
				return
			}
			for {
				if _, err := c.Recv(p); err != nil {
					return
				}
				count++
			}
		})
		p.Yield()
		c, err := a.Dial(p, ip.Endpoint{Addr: addrB, Port: 80})
		if err != nil {
			t.Errorf("dial through lossy link: %v", err)
			return
		}
		for i := 0; i < 50; i++ {
			c.Send(p, []byte{byte(i)})
		}
		c.Close(p)
	})
	if count != 50 {
		t.Fatalf("received %d/50 messages through lossy reliable conn", count)
	}
	if e.n.Stats().Retransmits == 0 {
		t.Fatal("expected retransmissions on a 30% lossy link")
	}
}

func TestConnInOrderUnderJitter(t *testing.T) {
	// Jitter can reorder raw deliveries; the connection's sequence
	// numbers must restore application-visible order.
	e := newEnv()
	a, err := e.n.AddHost(addrA,
		netem.PipeConfig{Delay: 10 * time.Millisecond, Jitter: 20 * time.Millisecond},
		netem.PipeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := e.n.AddHost(addrB, netem.PipeConfig{}, netem.PipeConfig{})
	var got []int
	e.run(t, func(p *sim.Proc) {
		p.Go("server", func(p *sim.Proc) {
			l, _ := b.Listen(p, 80)
			c, err := l.Accept(p)
			if err != nil {
				return
			}
			for {
				pk, err := c.Recv(p)
				if err != nil {
					return
				}
				got = append(got, int(pk.Data[0]))
			}
		})
		p.Yield()
		c, err := a.Dial(p, ip.Endpoint{Addr: addrB, Port: 80})
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		for i := 0; i < 60; i++ {
			c.Send(p, []byte{byte(i)})
		}
		c.Close(p)
	})
	if len(got) != 60 {
		t.Fatalf("received %d/60", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order under jitter at %d: %v", i, got[:i+1])
		}
	}
}

func TestPingRTTWithTopoFabric(t *testing.T) {
	// Fig 7 check: RTT between the fast-dsl and campus groups should be
	// ≈850 ms (20+400+5 out, 5+400+20 back).
	k := sim.New(1)
	tp := topo.Fig7()
	n := NewNetwork(k, &TopoFabric{Topo: tp}, DefaultConfig())
	src, err := n.AddHostClass(ip.MustParseAddr("10.1.3.207"), topo.FastDSL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddHostClass(ip.MustParseAddr("10.2.2.117"), topo.Campus); err != nil {
		t.Fatal(err)
	}
	var rtt time.Duration
	var ok bool
	k.Go("pinger", func(p *sim.Proc) {
		rtt, ok = src.Ping(p, ip.MustParseAddr("10.2.2.117"), DefaultPingSize, 10*time.Second)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("ping lost")
	}
	if rtt < 850*time.Millisecond || rtt > 860*time.Millisecond {
		t.Fatalf("RTT = %v, want ≈850ms (paper: 853ms)", rtt)
	}
}

func TestPingTimeoutOnDeniedPath(t *testing.T) {
	e := newEnv()
	a, _ := e.twoHosts(t)
	var ok bool
	e.run(t, func(p *sim.Proc) {
		_, ok = a.Ping(p, ip.MustParseAddr("10.9.9.9"), 56, time.Second)
	})
	if ok {
		t.Fatal("ping to unknown host should fail")
	}
}

func TestPingSeries(t *testing.T) {
	e := newEnv()
	a, _ := e.n.AddHostClass(addrA, topo.DSL)
	_, _ = e.n.AddHostClass(addrB, topo.DSL)
	var st PingStats
	e.run(t, func(p *sim.Proc) {
		st = a.PingSeries(p, addrB, 56, 5, 100*time.Millisecond, time.Second)
	})
	if st.Sent != 5 || st.Received != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Min > st.Avg || st.Avg > st.Max {
		t.Fatalf("min/avg/max inconsistent: %+v", st)
	}
	// 4 × 30ms latency plus 2 × 6ms serialization of 96 wire bytes on
	// the 128 kb/s up-links (and a negligible down-link pass).
	if st.Avg < 130*time.Millisecond || st.Avg > 136*time.Millisecond {
		t.Fatalf("avg RTT = %v, want ≈132ms", st.Avg)
	}
}

func TestBindInterceptionSyscallCounts(t *testing.T) {
	e := newEnv()
	a, b := e.twoHosts(t)
	a.SetBindEnv(addrA)
	e.run(t, func(p *sim.Proc) {
		p.Go("server", func(p *sim.Proc) {
			l, _ := b.Listen(p, 80)
			l.Accept(p)
		})
		p.Yield()
		c, err := a.Dial(p, ip.Endpoint{Addr: addrB, Port: 80})
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		c.Close(p)
	})
	m := a.Meter()
	if m.Count(SyscallBind) != 1 {
		t.Fatalf("intercepted dial should add 1 bind, got %d", m.Count(SyscallBind))
	}
	if m.Count(SyscallGetenv) != 1 {
		t.Fatalf("intercepted dial should add 1 getenv, got %d", m.Count(SyscallGetenv))
	}
	if m.Count(SyscallConnect) != 1 || m.Count(SyscallSocket) != 1 || m.Count(SyscallClose) != 1 {
		t.Fatalf("unexpected counts: %v", m.Counts)
	}
}

func TestConnectCycleCostMatchesPaper(t *testing.T) {
	// The paper: 10.22 µs per connect/disconnect cycle unmodified,
	// 10.79 µs with the libc interception.
	cycle := func(intercept bool) time.Duration {
		e := newEnv()
		a, b := e.twoHosts(t)
		if intercept {
			a.SetBindEnv(addrA)
		}
		e.run(t, func(p *sim.Proc) {
			p.Go("server", func(p *sim.Proc) {
				l, _ := b.Listen(p, 80)
				for {
					if _, err := l.Accept(p); err != nil {
						return
					}
				}
			})
			p.Yield()
			c, err := a.Dial(p, ip.Endpoint{Addr: addrB, Port: 80})
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			c.Close(p)
			e.k.Stop()
		})
		return a.Meter().Total
	}
	plain := cycle(false)
	intercepted := cycle(true)
	if plain != 10220*time.Nanosecond {
		t.Fatalf("plain cycle = %v, want 10.22µs", plain)
	}
	if intercepted != 10790*time.Nanosecond {
		t.Fatalf("intercepted cycle = %v, want 10.79µs", intercepted)
	}
}

func TestPopulateTopology(t *testing.T) {
	e := newEnv()
	hosts, err := e.n.PopulateTopology(topo.Fig7())
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 2750 {
		t.Fatalf("hosts = %d, want 2750", len(hosts))
	}
	// Spot-check: first fast-dsl host has a 1 Mb/s up-link.
	h := e.n.Host(ip.MustParseAddr("10.1.3.1"))
	if h == nil {
		t.Fatal("10.1.3.1 missing")
	}
	if h.UpPipe().Config().Bandwidth != 1*netem.Mbps {
		t.Fatalf("up bandwidth = %d", h.UpPipe().Config().Bandwidth)
	}
}

func TestEphemeralPortsUnique(t *testing.T) {
	e := newEnv()
	a, b := e.twoHosts(t)
	seen := map[ip.Port]bool{}
	e.run(t, func(p *sim.Proc) {
		p.Go("server", func(p *sim.Proc) {
			l, _ := b.Listen(p, 80)
			for {
				if _, err := l.Accept(p); err != nil {
					return
				}
			}
		})
		p.Yield()
		for i := 0; i < 10; i++ {
			c, err := a.Dial(p, ip.Endpoint{Addr: addrB, Port: 80})
			if err != nil {
				t.Errorf("dial %d: %v", i, err)
				return
			}
			if seen[c.LocalAddr().Port] {
				t.Errorf("duplicate ephemeral port %d", c.LocalAddr().Port)
			}
			seen[c.LocalAddr().Port] = true
		}
		e.k.Stop()
	})
}

func TestNetworkTrace(t *testing.T) {
	e := newEnv()
	a, b := e.twoHosts(t)
	log := trace.New(100)
	e.n.SetTrace(log)
	e.run(t, func(p *sim.Proc) {
		p.Go("server", func(p *sim.Proc) {
			l, _ := b.Listen(p, 80)
			c, err := l.Accept(p)
			if err != nil {
				return
			}
			c.Recv(p)
		})
		p.Yield()
		c, _ := a.Dial(p, ip.Endpoint{Addr: addrB, Port: 80})
		c.Send(p, []byte("traced"))
	})
	if log.Count("net.send") < 3 { // SYN, SYNACK, data
		t.Fatalf("sends traced = %d", log.Count("net.send"))
	}
	if log.Count("net.send") != log.Count("net.deliver") {
		t.Fatalf("send/deliver mismatch: %d vs %d",
			log.Count("net.send"), log.Count("net.deliver"))
	}
}

func TestNetworkStats(t *testing.T) {
	e := newEnv()
	a, b := e.twoHosts(t)
	e.run(t, func(p *sim.Proc) {
		p.Go("server", func(p *sim.Proc) {
			l, _ := b.Listen(p, 80)
			c, err := l.Accept(p)
			if err != nil {
				return
			}
			c.Recv(p)
		})
		p.Yield()
		c, _ := a.Dial(p, ip.Endpoint{Addr: addrB, Port: 80})
		c.Send(p, []byte("x"))
	})
	st := e.n.Stats()
	if st.MessagesSent < 3 { // SYN, SYNACK, data
		t.Fatalf("MessagesSent = %d", st.MessagesSent)
	}
	if st.MessagesDelivered != st.MessagesSent {
		t.Fatalf("delivered %d of %d on a lossless net", st.MessagesDelivered, st.MessagesSent)
	}
}
