// Package repro is a Go reproduction of P2PLab, the lightweight
// emulation platform for studying peer-to-peer systems of Nussbaum &
// Richard ("Lightweight emulation to study peer-to-peer systems",
// Hot-P2P/IPPS 2006).
//
// The package is a facade over the substrate packages:
//
//   - a deterministic virtual-time kernel (internal/sim) on which all
//     experiments run reproducibly;
//   - a Dummynet/IPFW-style network emulator (internal/netem);
//   - edge-centric topologies: access-link classes and group latencies
//     (internal/topo);
//   - virtual sockets and node network identities (internal/vnet);
//   - the physical-cluster model with folding and per-node firewalls
//     (internal/virt);
//   - OS scheduler simulators for the paper's FreeBSD-vs-Linux study
//     (internal/sched);
//   - a full BitTorrent implementation (internal/bt);
//   - one driver per paper figure (internal/exp).
//
// The quickest way in is Lab:
//
//	lab, _ := repro.NewLab(repro.LabConfig{Seed: 1, Nodes: 2, Class: repro.DSL})
//	lab.Go("ping", func(p *repro.Proc) {
//	    rtt, _ := lab.Hosts[0].Ping(p, lab.Hosts[1].Addr(), 56, time.Second)
//	    fmt.Println("rtt:", rtt)
//	})
//	lab.Run()
package repro

import (
	"fmt"
	"time"

	"repro/internal/bt"
	"repro/internal/chord"
	"repro/internal/churn"
	"repro/internal/exp"
	"repro/internal/ip"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/virt"
	"repro/internal/vnet"
)

// Core type aliases: the full substrate API is reachable through them.
type (
	// Kernel is the deterministic virtual-time simulation kernel.
	Kernel = sim.Kernel
	// Proc is a simulated goroutine's handle.
	Proc = sim.Proc
	// Time is an instant on the virtual timeline.
	Time = sim.Time

	// Addr is an IPv4-style address; Endpoint an (addr, port) pair.
	Addr = ip.Addr
	// Endpoint is a socket identity.
	Endpoint = ip.Endpoint
	// Prefix is a CIDR block.
	Prefix = ip.Prefix

	// Network is the virtual internet; Host one virtual node.
	Network = vnet.Network
	// Host is a virtual node with its own network identity.
	Host = vnet.Host
	// Conn is a TCP-like connection between virtual nodes.
	Conn = vnet.Conn
	// Listener accepts inbound virtual connections.
	Listener = vnet.Listener

	// Pipe is a Dummynet-style shaped link.
	Pipe = netem.Pipe
	// PipeConfig configures bandwidth/delay/loss/queue of a Pipe.
	PipeConfig = netem.PipeConfig
	// RuleSet is an IPFW-style linearly evaluated firewall table.
	RuleSet = netem.RuleSet

	// Topology is an edge-centric network description.
	Topology = topo.Topology
	// Group is a set of nodes sharing a prefix and link class.
	Group = topo.Group
	// LinkClass describes a node's access link.
	LinkClass = topo.LinkClass

	// Cluster is the physical machine model (folding, NIC, firewall).
	Cluster = virt.Cluster
	// ClusterConfig configures a Cluster.
	ClusterConfig = virt.Config

	// SchedKind selects an OS scheduler model (4BSD, ULE, Linux 2.6).
	SchedKind = sched.Kind
	// SchedConfig configures the simulated machine.
	SchedConfig = sched.Config
	// SchedResult is the outcome of a scheduler run.
	SchedResult = sched.Result

	// Swarm is a BitTorrent experiment bundle.
	Swarm = bt.Swarm
	// SwarmSpec describes the torrent side of a swarm.
	SwarmSpec = bt.SwarmSpec
	// BTClient is one BitTorrent node.
	BTClient = bt.Client
	// MetaInfo is a .torrent description.
	MetaInfo = bt.MetaInfo

	// Series is a named (x, y) curve; Summary holds order statistics.
	Series = metrics.Series
	// Summary holds order statistics of a sample.
	Summary = metrics.Summary

	// SwarmParams configures a figure-8/9/10/11 style experiment.
	SwarmParams = exp.SwarmParams
	// SwarmOutcome is the measured result of a swarm run.
	SwarmOutcome = exp.SwarmOutcome

	// ChordNode is one Chord DHT participant (extension system).
	ChordNode = chord.Node
	// ChordConfig tunes the Chord maintenance protocol.
	ChordConfig = chord.Config
	// ChurnDriver applies arrival/departure processes to peers.
	ChurnDriver = churn.Driver
	// ChurnConfig describes a churn process.
	ChurnConfig = churn.Config
)

// Link classes of the paper's experiments.
var (
	// DSL is the BitTorrent experiments' link (2 Mb/s down, 128 kb/s
	// up, 30 ms).
	DSL = topo.DSL
	// Modem, SlowDSL, FastDSL, Campus, Office are Fig 7's classes.
	Modem   = topo.Modem
	SlowDSL = topo.SlowDSL
	FastDSL = topo.FastDSL
	Campus  = topo.Campus
	Office  = topo.Office
	// LAN is an unconstrained link for trackers and servers.
	LAN = topo.LAN
)

// Scheduler kinds.
const (
	FourBSD = sched.FourBSD
	ULE     = sched.ULE
	LinuxO1 = sched.LinuxO1
)

// Re-exported constructors.
var (
	// NewKernel creates a deterministic virtual-time kernel.
	NewKernel = sim.New
	// NewTopology creates an empty topology.
	NewTopology = topo.New
	// Fig7Topology builds the paper's Fig 7 three-region topology.
	Fig7Topology = topo.Fig7
	// UniformTopology builds a single-group topology.
	UniformTopology = topo.Uniform
	// ParseAddr and ParsePrefix parse dotted-quad notation.
	ParseAddr   = ip.ParseAddr
	ParsePrefix = ip.ParsePrefix
	// MustParseAddr and MustParsePrefix panic on error; for literals.
	MustParseAddr   = ip.MustParseAddr
	MustParsePrefix = ip.MustParsePrefix
	// RunSched simulates jobs under an OS scheduler model.
	RunSched = sched.Run
	// DefaultSchedConfig returns the paper's GridExplorer-like machine.
	DefaultSchedConfig = sched.DefaultConfig
	// CPUBoundJobs, MemoryJobs and FairnessJobs build the paper's three
	// process workloads (Figs 1, 2 and 3).
	CPUBoundJobs = sched.CPUBoundJobs
	MemoryJobs   = sched.MemoryJobs
	FairnessJobs = sched.FairnessJobs
	// BuildSwarm assembles a BitTorrent swarm on prepared hosts.
	BuildSwarm = bt.BuildSwarm
	// RunSwarm executes a full swarm experiment (Figs 8–11).
	RunSwarm = exp.RunSwarm
	// WriteDat renders series as gnuplot-compatible data.
	WriteDat = metrics.WriteDat
)

// Figure drivers (see DESIGN.md for the experiment index).
var (
	Fig1         = exp.Fig1
	Fig2         = exp.Fig2
	Fig3         = exp.Fig3
	BindOverhead = exp.BindOverhead
	Fig6         = exp.Fig6
	Fig6Series   = exp.Fig6Series
	Fig6Indexed  = exp.Fig6Indexed
	Fig7         = exp.Fig7
	Fig8Params   = exp.Fig8Params
	Fig9         = exp.Fig9
	Fig10Params  = exp.Fig10Params
)

// Extension experiments: Chord DHT studies and churn.
var (
	// NewChordNode creates a Chord node on a virtual host.
	NewChordNode = chord.NewNode
	// DefaultChordConfig returns standard maintenance periods.
	DefaultChordConfig = chord.DefaultConfig
	// DHTScaling measures Chord lookup hops vs ring size (E1).
	DHTScaling = exp.DHTScaling
	// DHTLocality measures Chord lookup latency vs access link (E2).
	DHTLocality = exp.DHTLocality
	// NewChurnDriver creates a churn process driver.
	NewChurnDriver = churn.NewDriver
	// GossipSpread and GossipFanoutSweep run epidemic dissemination
	// experiments (E6).
	GossipSpread      = exp.GossipSpread
	GossipFanoutSweep = exp.GossipFanoutSweep
)

// LabConfig configures a Lab, the one-stop experiment environment.
type LabConfig struct {
	// Seed drives the deterministic random source (default 1).
	Seed int64
	// Nodes is the number of virtual nodes to create (ignored when
	// Topology is set).
	Nodes int
	// Class is the access link for Nodes-style creation (default DSL).
	Class LinkClass
	// Topology, when set, populates one host per topology node instead.
	Topology *Topology
	// PhysNodes, when positive, adds the physical-cluster layer with
	// this many machines; Folding sets virtual nodes per machine.
	PhysNodes int
	Folding   int
}

// Lab bundles a kernel, a network, optional cluster and hosts.
type Lab struct {
	Kernel  *Kernel
	Net     *Network
	Cluster *Cluster
	Topo    *Topology
	Hosts   []*Host
}

// NewLab builds a ready-to-use experiment environment.
func NewLab(cfg LabConfig) (*Lab, error) {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	k := sim.New(seed)
	l := &Lab{Kernel: k, Topo: cfg.Topology}

	var fabric vnet.Fabric
	if cfg.PhysNodes > 0 {
		ccfg := virt.DefaultConfig(cfg.Topology)
		cl, err := virt.NewCluster(k, cfg.PhysNodes, ccfg)
		if err != nil {
			return nil, err
		}
		l.Cluster = cl
		fabric = cl
	} else if cfg.Topology != nil {
		fabric = &vnet.TopoFabric{Topo: cfg.Topology}
	}
	l.Net = vnet.NewNetwork(k, fabric, vnet.DefaultConfig())

	switch {
	case cfg.Topology != nil:
		hosts, err := l.Net.PopulateTopology(cfg.Topology)
		if err != nil {
			return nil, err
		}
		l.Hosts = hosts
	case cfg.Nodes > 0:
		class := cfg.Class
		if class.Name == "" {
			class = DSL
		}
		base := ip.MustParseAddr("10.0.0.1")
		for i := 0; i < cfg.Nodes; i++ {
			h, err := l.Net.AddHostClass(base.Add(uint32(i)), class)
			if err != nil {
				return nil, err
			}
			l.Hosts = append(l.Hosts, h)
		}
	}
	if l.Cluster != nil && len(l.Hosts) > 0 {
		folding := cfg.Folding
		if folding <= 0 {
			folding = (len(l.Hosts) + cfg.PhysNodes - 1) / cfg.PhysNodes
		}
		if err := l.Cluster.PlaceSuccessive(l.Hosts, folding); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// Go spawns a simulated goroutine (sugar for Kernel.Go).
func (l *Lab) Go(name string, fn func(p *Proc)) { l.Kernel.Go(name, fn) }

// Run executes the lab to completion.
func (l *Lab) Run() error { return l.Kernel.Run() }

// RunFor executes the lab for at most d of virtual time.
func (l *Lab) RunFor(d time.Duration) error { return l.Kernel.RunUntil(sim.Time(d)) }

// Host returns the i-th host, for quick scripting.
func (l *Lab) Host(i int) *Host {
	if i < 0 || i >= len(l.Hosts) {
		panic(fmt.Sprintf("repro: lab has %d hosts, no index %d", len(l.Hosts), i))
	}
	return l.Hosts[i]
}
