package repro

import (
	"testing"
	"time"
)

func TestLabSimpleNodes(t *testing.T) {
	lab, err := NewLab(LabConfig{Seed: 1, Nodes: 2, Class: DSL})
	if err != nil {
		t.Fatal(err)
	}
	if len(lab.Hosts) != 2 {
		t.Fatalf("hosts = %d", len(lab.Hosts))
	}
	var rtt time.Duration
	var ok bool
	lab.Go("pinger", func(p *Proc) {
		rtt, ok = lab.Host(0).Ping(p, lab.Host(1).Addr(), 56, time.Second)
	})
	if err := lab.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("ping lost")
	}
	// 4 × 30 ms DSL latency plus serialization.
	if rtt < 120*time.Millisecond || rtt > 140*time.Millisecond {
		t.Fatalf("rtt = %v", rtt)
	}
}

func TestLabWithTopology(t *testing.T) {
	lab, err := NewLab(LabConfig{Seed: 1, Topology: Fig7Topology()})
	if err != nil {
		t.Fatal(err)
	}
	if len(lab.Hosts) != 2750 {
		t.Fatalf("hosts = %d", len(lab.Hosts))
	}
	src := lab.Net.Host(MustParseAddr("10.1.3.207"))
	var rtt time.Duration
	lab.Go("pinger", func(p *Proc) {
		rtt, _ = src.Ping(p, MustParseAddr("10.2.2.117"), 56, 5*time.Second)
	})
	if err := lab.Run(); err != nil {
		t.Fatal(err)
	}
	if rtt < 850*time.Millisecond || rtt > 860*time.Millisecond {
		t.Fatalf("rtt = %v, want ≈853ms", rtt)
	}
}

func TestLabWithCluster(t *testing.T) {
	lab, err := NewLab(LabConfig{Seed: 1, Nodes: 20, PhysNodes: 2, Folding: 10})
	if err != nil {
		t.Fatal(err)
	}
	if lab.Cluster == nil {
		t.Fatal("cluster missing")
	}
	if lab.Cluster.FoldingRatio() != 10 {
		t.Fatalf("folding = %v", lab.Cluster.FoldingRatio())
	}
}

func TestLabRunFor(t *testing.T) {
	lab, err := NewLab(LabConfig{Seed: 1, Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	ticks := 0
	lab.Go("ticker", func(p *Proc) {
		for {
			p.Sleep(time.Second)
			ticks++
		}
	})
	if err := lab.RunFor(5500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
}

func TestLabHostPanicsOutOfRange(t *testing.T) {
	lab, _ := NewLab(LabConfig{Seed: 1, Nodes: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	lab.Host(5)
}

func TestFacadeSchedulerRun(t *testing.T) {
	res := RunSched(DefaultSchedConfig(FourBSD), CPUBoundJobs(10))
	if len(res.Procs) != 10 {
		t.Fatalf("procs = %d", len(res.Procs))
	}
}

func TestFacadeSwarmRun(t *testing.T) {
	sp := Fig8Params().Scale(20)
	sp.StartInterval = 2 * time.Second
	out, err := RunSwarm(sp)
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllDone {
		t.Fatal("swarm incomplete")
	}
}

func TestFacadeBindOverhead(t *testing.T) {
	res, err := BindOverhead()
	if err != nil {
		t.Fatal(err)
	}
	if res.Plain >= res.Intercepted {
		t.Fatal("interception must cost something")
	}
}
