#!/usr/bin/env bash
# Records the benchmark baseline used by the regression harness.
#
#   scripts/bench_baseline.sh               # rewrite BENCH_baseline.json
#   scripts/bench_baseline.sh check         # run now and diff against it
#
# The recorded set covers the kernel hot path (event dispatch under the
# two queue implementations), the figure-level scheduler workload, the
# flow-solver churn path (incremental component re-solve), the
# firewall classifier (linear scan vs hash index over a 50k-rule
# table), and the obs-registry update paid on instrumented transmit
# paths: the benchmarks whose trajectory the queue/pooling/flow/
# classifier/observability work is expected to move. Compare machines
# with a grain of salt — the baseline is only meaningful against runs
# on comparable hardware.
set -euo pipefail
cd "$(dirname "$0")/.."

PATTERN='BenchmarkKernelModes|BenchmarkKernelQueues|BenchmarkFig1SchedulerScaling|BenchmarkSweep|BenchmarkFlowChurn|BenchmarkRuleEval|BenchmarkObsHot'
OUT=BENCH_baseline.json

run() {
  go test -run=NONE -bench "$PATTERN" -benchmem -benchtime=1s -count=1 .
}

# Hot-path metric updates must stay pure memory writes: fail if any
# BenchmarkObsHot variant reports a nonzero allocs/op (DESIGN.md
# decision 9).
gate_zero_alloc() {
  local raw=$1
  if grep -E '^BenchmarkObsHot/' "$raw" | grep -vq ' 0 allocs/op'; then
    echo "obs hot-path update allocates:" >&2
    grep -E '^BenchmarkObsHot/' "$raw" >&2
    return 1
  fi
}

case "${1:-record}" in
  record)
    raw=$(mktemp)
    trap 'rm -f "$raw"' EXIT
    run | tee "$raw" | go run ./cmd/benchjson > "$OUT"
    gate_zero_alloc "$raw"
    echo "wrote $OUT"
    ;;
  check)
    tmp=$(mktemp) raw=$(mktemp)
    trap 'rm -f "$tmp" "$raw"' EXIT
    run | tee "$raw" | go run ./cmd/benchjson > "$tmp"
    gate_zero_alloc "$raw"
    # The churn benchmark is the flow solver's fast-path contract
    # (ISSUE 6: batched re-rates): pin it tighter than the global
    # tolerance so the batching win cannot silently erode.
    go run ./cmd/benchjson -diff \
      -ratio 'BenchmarkFlowChurn/components=1=1.15' "$OUT" "$tmp"
    ;;
  *)
    echo "usage: $0 [record|check]" >&2
    exit 2
    ;;
esac
