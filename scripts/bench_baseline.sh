#!/usr/bin/env bash
# Records the benchmark baseline used by the regression harness.
#
#   scripts/bench_baseline.sh               # rewrite BENCH_baseline.json
#   scripts/bench_baseline.sh check         # run now and diff against it
#
# The recorded set covers the kernel hot path (event dispatch under the
# two queue implementations), the figure-level scheduler workload, the
# flow-solver churn path (incremental component re-solve), and the
# firewall classifier (linear scan vs hash index over a 50k-rule
# table): the benchmarks whose trajectory the queue/pooling/flow/
# classifier work is expected to move. Compare machines with a grain of
# salt — the baseline is only meaningful against runs on comparable
# hardware.
set -euo pipefail
cd "$(dirname "$0")/.."

PATTERN='BenchmarkKernelModes|BenchmarkKernelQueues|BenchmarkFig1SchedulerScaling|BenchmarkSweep|BenchmarkFlowChurn|BenchmarkRuleEval'
OUT=BENCH_baseline.json

run() {
  go test -run=NONE -bench "$PATTERN" -benchmem -benchtime=1s -count=1 .
}

case "${1:-record}" in
  record)
    run | go run ./cmd/benchjson > "$OUT"
    echo "wrote $OUT"
    ;;
  check)
    tmp=$(mktemp)
    trap 'rm -f "$tmp"' EXIT
    run | go run ./cmd/benchjson > "$tmp"
    # The churn benchmark is the flow solver's fast-path contract
    # (ISSUE 6: batched re-rates): pin it tighter than the global
    # tolerance so the batching win cannot silently erode.
    go run ./cmd/benchjson -diff \
      -ratio 'BenchmarkFlowChurn/components=1=1.15' "$OUT" "$tmp"
    ;;
  *)
    echo "usage: $0 [record|check]" >&2
    exit 2
    ;;
esac
