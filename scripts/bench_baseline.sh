#!/usr/bin/env bash
# Records the benchmark baseline used by the regression harness.
#
#   scripts/bench_baseline.sh               # rewrite BENCH_baseline.json
#   scripts/bench_baseline.sh check         # run now and diff against it
#
# The recorded set covers the kernel hot path (event dispatch under the
# two queue implementations), the figure-level scheduler workload, the
# flow-solver churn path (incremental component re-solve), the
# firewall classifier (linear scan vs hash index over a 50k-rule
# table), the obs-registry update paid on instrumented transmit
# paths, the swarm-scale family (megaswarm peers/sec plus the bt
# per-event hot paths), and the snapshot-sync family (few peers, huge
# file, token-bucket caps, web seed): the benchmarks whose trajectory
# the queue/pooling/flow/classifier/observability/hot-loop/rate-limit
# work is expected to move. Compare machines with a grain of salt —
# the baseline is only meaningful against runs on comparable hardware.
set -euo pipefail
cd "$(dirname "$0")/.."

PATTERN='BenchmarkKernelModes|BenchmarkKernelQueues|BenchmarkFig1SchedulerScaling|BenchmarkSweep|BenchmarkFlowChurn|BenchmarkRuleEval|BenchmarkObsHot|BenchmarkSwarmScaleHot|BenchmarkSnapshotSync'
OUT=BENCH_baseline.json

run() {
  # BenchmarkSwarmScaleHot lives in internal/bt; everything else in
  # the root package.
  go test -run=NONE -bench "$PATTERN" -benchmem -benchtime=1s -count=1 . ./internal/bt/
  # The megaswarm points run whole horizon-bounded swarms: one
  # iteration each (the 10k point alone is minutes of wall time).
  go test -run=NONE -bench 'BenchmarkSwarmScale$' -benchmem -benchtime=1x \
    -timeout 30m -count=1 .
}

# Hot-path updates must stay allocation-free: fail if any variant of
# the given benchmark family reports a nonzero allocs/op. Applied to
# the obs-registry update (DESIGN.md decision 9) and to the bt
# per-event hot paths — Have/interest and piece picking (DESIGN.md
# decision 10).
gate_zero_alloc() {
  local raw=$1 family=$2 what=$3
  # A family that produced no output is a failure too — otherwise a
  # package dropped from the bench run would pass the gate vacuously.
  if ! grep -qE "^${family}/" "$raw"; then
    echo "$what: no benchmark output found for ${family}" >&2
    return 1
  fi
  if grep -E "^${family}/" "$raw" | grep -vq ' 0 allocs/op'; then
    echo "$what allocates:" >&2
    grep -E "^${family}/" "$raw" >&2
    return 1
  fi
}

# Families that carry a regression contract must actually run: a
# rename or a pattern typo silently dropping one would let later
# regressions land ungated.
gate_present() {
  local raw=$1 family=$2 what=$3
  if ! grep -qE "^${family}/" "$raw"; then
    echo "$what: no benchmark output found for ${family}" >&2
    return 1
  fi
}

gate_all() {
  local raw=$1
  gate_zero_alloc "$raw" BenchmarkObsHot 'obs hot-path update'
  gate_zero_alloc "$raw" BenchmarkSwarmScaleHot 'bt swarm hot path'
  gate_present "$raw" BenchmarkSnapshotSync 'snapshot-sync family'
}

case "${1:-record}" in
  record)
    raw=$(mktemp)
    trap 'rm -f "$raw"' EXIT
    run | tee "$raw" | go run ./cmd/benchjson > "$OUT"
    gate_all "$raw"
    echo "wrote $OUT"
    ;;
  check)
    tmp=$(mktemp) raw=$(mktemp)
    trap 'rm -f "$tmp" "$raw"' EXIT
    run | tee "$raw" | go run ./cmd/benchjson > "$tmp"
    gate_all "$raw"
    # The churn benchmark is the flow solver's fast-path contract
    # (ISSUE 6: batched re-rates): pin it tighter than the global
    # tolerance so the batching win cannot silently erode.
    go run ./cmd/benchjson -diff \
      -ratio 'BenchmarkFlowChurn/components=1=1.15' "$OUT" "$tmp"
    ;;
  *)
    echo "usage: $0 [record|check]" >&2
    exit 2
    ;;
esac
